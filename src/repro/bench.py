"""Fast-path benchmark: simulated-packets-per-wallclock-second, fast vs slow.

Backs the ``repro bench`` CLI subcommand and
``benchmarks/bench_fastpath.py``.  The benchmark runs one scenario —
the Fig. 7 FW → NAT → LB setup by default — through both deployments
(baseline and PayloadPark) twice: once on the reference simulation path
(``fast_path=False``: heapq event loop, string-parsed packet
construction, per-stage table walks, live cost-model queries) and once
on the fast path (calendar event loop, pooled packet templates,
compiled/cached pipeline walks, memoized NF verdicts, precomputed cost
model).  Both runs produce byte-identical reports — the golden-figure
suite enforces that — so the only thing that differs is wallclock.

The committed reference numbers live in
``benchmarks/fastpath_baseline.json``; ``check_result`` compares a
fresh measurement's speedup against them with a regression tolerance,
which is what the CI bench smoke step runs.  Absolute packets/sec vary
with the host, but the fast/slow *ratio* is fairly stable across
machines, so the ratio is what the baseline pins.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.experiments.runner import (
    DeploymentKind,
    ExperimentRunner,
    ScenarioConfig,
    default_fast_path,
)

#: Scenario name -> builder(rate_gbps) for benchmarkable setups.
BENCH_SCENARIOS: Dict[str, Callable[[float], ScenarioConfig]] = {}


def _register_scenarios() -> None:
    from repro.experiments import scenarios

    BENCH_SCENARIOS.update(
        {
            "fig07": lambda rate: scenarios.fw_nat_lb_10ge(send_rate_gbps=rate),
            "fig08": lambda rate: scenarios.fixed_size_40ge(
                "fw_nat", 1024, send_rate_gbps=rate
            ),
            "fig16": lambda rate: scenarios.small_packet_40ge(send_rate_gbps=rate),
        }
    )


_register_scenarios()

#: Default operating point: the Fig. 7 scenario near baseline saturation,
#: where both deployments carry real load.
DEFAULT_SCENARIO = "fig07"
DEFAULT_RATE_GBPS = 10.5
DEFAULT_TIME_SCALE = 1.0
QUICK_TIME_SCALE = 0.25

#: CI fails when the measured speedup falls more than this fraction
#: below the committed baseline speedup.
DEFAULT_TOLERANCE = 0.30


def _measure_mode(
    build: Callable[[float], ScenarioConfig],
    rate_gbps: float,
    time_scale: float,
    fast: bool,
) -> Dict[str, float]:
    """Run both deployments once in one mode; return wall time and packets."""
    with default_fast_path(fast):
        scenario = build(rate_gbps)
        runner = ExperimentRunner(time_scale=time_scale)
        started = time.perf_counter()
        baseline = runner.run_deployment(scenario, DeploymentKind.BASELINE)
        payloadpark = runner.run_deployment(scenario, DeploymentKind.PAYLOADPARK)
        wall_s = time.perf_counter() - started
    packets = baseline.packets_sent + payloadpark.packets_sent
    return {
        "wall_s": round(wall_s, 4),
        "packets": packets,
        "packets_per_sec": round(packets / wall_s, 1) if wall_s > 0 else 0.0,
    }


def run_bench(
    scenario: str = DEFAULT_SCENARIO,
    rate_gbps: float = DEFAULT_RATE_GBPS,
    time_scale: float = DEFAULT_TIME_SCALE,
    repeat: int = 1,
) -> Dict[str, object]:
    """Benchmark *scenario* on both simulation paths.

    ``repeat`` keeps the best (highest packets/sec) of N measurements
    per mode, which damps scheduler noise on loaded machines.
    """
    if scenario not in BENCH_SCENARIOS:
        raise ValueError(
            f"unknown bench scenario {scenario!r}; expected one of {sorted(BENCH_SCENARIOS)}"
        )
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    if repeat < 1:
        raise ValueError("repeat must be at least 1")
    build = BENCH_SCENARIOS[scenario]

    def best(fast: bool) -> Dict[str, float]:
        runs = [
            _measure_mode(build, rate_gbps, time_scale, fast) for _ in range(repeat)
        ]
        return max(runs, key=lambda run: run["packets_per_sec"])

    slow = best(fast=False)
    fast = best(fast=True)
    speedup = (
        fast["packets_per_sec"] / slow["packets_per_sec"]
        if slow["packets_per_sec"]
        else 0.0
    )
    return {
        "scenario": scenario,
        "rate_gbps": rate_gbps,
        "time_scale": time_scale,
        "slow": slow,
        "fast": fast,
        "speedup": round(speedup, 3),
    }


def default_baseline_path() -> Path:
    """The committed baseline next to the benchmark scripts."""
    return Path(__file__).resolve().parents[2] / "benchmarks" / "fastpath_baseline.json"


def load_baseline(path: Optional[Path] = None) -> Dict[str, object]:
    """Load the committed baseline numbers."""
    baseline_path = path or default_baseline_path()
    with open(baseline_path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_result(
    result: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> tuple:
    """Compare a fresh measurement against the committed baseline.

    Returns ``(ok, message)``.  The check is on the fast/slow speedup
    ratio — the machine-independent part of the measurement — and fails
    when it regresses more than *tolerance* below the baseline ratio.
    """
    baseline_speedup = float(baseline["speedup"])
    measured = float(result["speedup"])
    floor = baseline_speedup * (1.0 - tolerance)
    ok = measured >= floor
    message = (
        f"fast-path speedup {measured:.2f}x vs baseline {baseline_speedup:.2f}x "
        f"(floor {floor:.2f}x at {tolerance:.0%} tolerance): "
        + ("ok" if ok else "REGRESSION")
    )
    return ok, message


def format_result(result: Dict[str, object]) -> str:
    """Human-readable summary table for one benchmark result."""
    slow = result["slow"]
    fast = result["fast"]
    lines = [
        f"scenario: {result['scenario']} @ {result['rate_gbps']} Gbps "
        f"(time_scale {result['time_scale']})",
        f"  slow path: {slow['packets']:>8} packets  {slow['wall_s']:>8.2f}s  "
        f"{slow['packets_per_sec']:>10.0f} pkts/s",
        f"  fast path: {fast['packets']:>8} packets  {fast['wall_s']:>8.2f}s  "
        f"{fast['packets_per_sec']:>10.0f} pkts/s",
        f"  speedup:   {result['speedup']:.2f}x",
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Observability overhead (repro.obs)
# ---------------------------------------------------------------------- #

#: The disabled observability plane must cost less than this fraction of
#: fast-path throughput.  The gate compares two in-process measurements
#: of the *same* build — observe absent vs observe present-but-disabled —
#: so it pins the hot-path guard cost, not machine speed.
OBS_OVERHEAD_TOLERANCE = 0.02


def _measure_observe_mode(
    build: Callable[[float], ScenarioConfig],
    rate_gbps: float,
    time_scale: float,
    observe: Optional[object],
) -> Dict[str, float]:
    """Run both deployments once on the fast path with one observe spec."""
    from repro.experiments.runner import default_observe

    with default_fast_path(True), default_observe(observe):
        scenario = build(rate_gbps)
        runner = ExperimentRunner(time_scale=time_scale)
        started = time.perf_counter()
        baseline = runner.run_deployment(scenario, DeploymentKind.BASELINE)
        payloadpark = runner.run_deployment(scenario, DeploymentKind.PAYLOADPARK)
        wall_s = time.perf_counter() - started
    packets = baseline.packets_sent + payloadpark.packets_sent
    return {
        "wall_s": round(wall_s, 4),
        "packets": packets,
        "packets_per_sec": round(packets / wall_s, 1) if wall_s > 0 else 0.0,
    }


def run_obs_overhead(
    scenario: str = DEFAULT_SCENARIO,
    rate_gbps: float = DEFAULT_RATE_GBPS,
    time_scale: float = DEFAULT_TIME_SCALE,
    repeat: int = 3,
) -> Dict[str, object]:
    """Measure the observability plane's fast-path cost in three modes.

    ``off`` runs with no observe spec at all (the production default);
    ``disabled`` runs with a spec whose features are all off — the plane
    is constructed and rejected, every hot-path hook stays ``None``;
    ``enabled`` runs with everything on (metrics + trace + profile).
    The regression gate is ``disabled`` vs ``off``: presence of the
    subsystem must not tax uninstrumented runs.  The gated ratio is the
    best per-round pair (see the comment below on noise), with the two
    modes measured back to back within every round.  ``enabled``
    overhead is reported for information only — full tracing is allowed
    to cost.
    """
    if scenario not in BENCH_SCENARIOS:
        raise ValueError(
            f"unknown bench scenario {scenario!r}; expected one of {sorted(BENCH_SCENARIOS)}"
        )
    if repeat < 1:
        raise ValueError("repeat must be at least 1")
    from repro.obs.config import ObserveSpec

    build = BENCH_SCENARIOS[scenario]

    # Measure the modes back to back inside each round and compare
    # within the round: machine drift (thermal, cache warmth, a noisy
    # neighbour) moves whole rounds, not the gap between two
    # measurements milliseconds apart, so the per-round ratio is far
    # more stable than a ratio of cross-round aggregates.  The gate
    # statistic is the *best* round's disabled/off ratio: transient
    # noise depresses individual rounds at random, but a real hook cost
    # depresses every round, so only a systematic regression keeps the
    # maximum below the floor.
    modes: Dict[str, Optional[object]] = {
        "off": None,
        "disabled": ObserveSpec(),
        "enabled": ObserveSpec.full(),
    }
    runs: Dict[str, list] = {name: [] for name in modes}
    disabled_ratios = []
    enabled_ratios = []
    for _ in range(repeat):
        round_runs = {
            name: _measure_observe_mode(build, rate_gbps, time_scale, observe)
            for name, observe in modes.items()
        }
        for name, run in round_runs.items():
            runs[name].append(run)
        off_pps = round_runs["off"]["packets_per_sec"]
        if off_pps:
            disabled_ratios.append(
                round_runs["disabled"]["packets_per_sec"] / off_pps
            )
            enabled_ratios.append(
                round_runs["enabled"]["packets_per_sec"] / off_pps
            )

    def best(name: str) -> Dict[str, float]:
        return max(runs[name], key=lambda run: run["packets_per_sec"])

    off = best("off")
    disabled = best("disabled")
    enabled = best("enabled")
    ratio = max(disabled_ratios) if disabled_ratios else 0.0
    enabled_ratio = max(enabled_ratios) if enabled_ratios else 0.0
    return {
        "scenario": scenario,
        "rate_gbps": rate_gbps,
        "time_scale": time_scale,
        "repeat": repeat,
        "off": off,
        "disabled": disabled,
        "enabled": enabled,
        "disabled_over_off": round(ratio, 4),
        "enabled_over_off": round(enabled_ratio, 4),
    }


def check_obs_overhead(
    result: Dict[str, object],
    tolerance: float = OBS_OVERHEAD_TOLERANCE,
) -> tuple:
    """Gate the disabled-plane overhead; returns ``(ok, message)``."""
    ratio = float(result["disabled_over_off"])
    floor = 1.0 - tolerance
    ok = ratio >= floor
    message = (
        f"disabled-observability throughput ratio {ratio:.3f} "
        f"(floor {floor:.3f} at {tolerance:.0%} overhead budget): "
        + ("ok" if ok else "REGRESSION")
    )
    return ok, message


def format_obs_overhead(result: Dict[str, object]) -> str:
    """Human-readable summary of one overhead measurement."""
    lines = [
        f"observability overhead: {result['scenario']} @ {result['rate_gbps']} Gbps "
        f"(time_scale {result['time_scale']}, best of {result['repeat']})",
    ]
    for mode in ("off", "disabled", "enabled"):
        run = result[mode]
        lines.append(
            f"  {mode:>8}: {run['packets']:>8} packets  {run['wall_s']:>8.2f}s  "
            f"{run['packets_per_sec']:>10.0f} pkts/s"
        )
    lines.append(
        f"  disabled/off ratio: {result['disabled_over_off']:.3f}   "
        f"enabled/off ratio: {result['enabled_over_off']:.3f}"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Campaign telemetry-bus overhead
# ---------------------------------------------------------------------- #

#: A bus-enabled campaign must cost less than this fraction of wall time
#: over the identical bus-off campaign.
BUS_OVERHEAD_TOLERANCE = 0.02


def _measure_campaign_mode(
    cells: int,
    time_scale: float,
    workers: int,
    bus_enabled: bool,
    events_dir: Path,
    round_index: int,
) -> Dict[str, float]:
    """Run one ephemeral campaign, bus on or off; return wall time."""
    from repro.orchestrator.executor import CampaignExecutor
    from repro.orchestrator.spec import CampaignSpec
    from repro.orchestrator.telemetrybus import TelemetryBus

    campaign = CampaignSpec(
        name=f"bus-bench-{round_index}",
        scenario="fw_nat_lb_10ge",
        grid={"send_rate_gbps": [2.0 + i for i in range(cells)]},
        time_scale=time_scale,
    )
    bus = None
    if bus_enabled:
        bus = TelemetryBus(
            events_path=events_dir / f"bus-bench-{round_index}.events.jsonl"
        ).start()
    try:
        started = time.perf_counter()
        summary = CampaignExecutor(workers=workers, bus=bus).run_campaign(
            campaign, store=None, resume=False
        )
        wall_s = time.perf_counter() - started
    finally:
        if bus is not None:
            bus.stop()
    return {
        "wall_s": round(wall_s, 4),
        "cells": summary.executed,
        "cells_per_sec": round(summary.executed / wall_s, 3) if wall_s > 0 else 0.0,
    }


def run_bus_overhead(
    cells: int = 6,
    time_scale: float = 0.05,
    repeat: int = 3,
    workers: int = 1,
) -> Dict[str, object]:
    """Measure the telemetry bus's campaign cost, bus-off vs bus-on.

    Same paired-round design as :func:`run_obs_overhead`: both modes run
    back to back within each round, the gated statistic is the *best*
    round's on/off throughput ratio — transient noise depresses rounds
    at random, a real bus cost depresses all of them.
    """
    if cells < 1:
        raise ValueError("cells must be at least 1")
    if repeat < 1:
        raise ValueError("repeat must be at least 1")
    import tempfile

    off_runs, on_runs, ratios = [], [], []
    with tempfile.TemporaryDirectory(prefix="repro-bus-bench-") as tmp:
        events_dir = Path(tmp)
        for round_index in range(repeat):
            off = _measure_campaign_mode(
                cells, time_scale, workers, False, events_dir, round_index
            )
            on = _measure_campaign_mode(
                cells, time_scale, workers, True, events_dir, round_index
            )
            off_runs.append(off)
            on_runs.append(on)
            if off["cells_per_sec"]:
                ratios.append(on["cells_per_sec"] / off["cells_per_sec"])

    def best(runs) -> Dict[str, float]:
        return max(runs, key=lambda run: run["cells_per_sec"])

    return {
        "cells": cells,
        "time_scale": time_scale,
        "repeat": repeat,
        "workers": workers,
        "off": best(off_runs),
        "on": best(on_runs),
        "on_over_off": round(max(ratios), 4) if ratios else 0.0,
    }


def check_bus_overhead(
    result: Dict[str, object],
    tolerance: float = BUS_OVERHEAD_TOLERANCE,
) -> tuple:
    """Gate the bus-enabled campaign overhead; returns ``(ok, message)``."""
    ratio = float(result["on_over_off"])
    floor = 1.0 - tolerance
    ok = ratio >= floor
    message = (
        f"bus-enabled campaign throughput ratio {ratio:.3f} "
        f"(floor {floor:.3f} at {tolerance:.0%} overhead budget): "
        + ("ok" if ok else "REGRESSION")
    )
    return ok, message


def format_bus_overhead(result: Dict[str, object]) -> str:
    """Human-readable summary of one bus-overhead measurement."""
    lines = [
        f"telemetry-bus overhead: {result['cells']} cells @ time_scale "
        f"{result['time_scale']} × {result['workers']} worker(s), "
        f"best of {result['repeat']}",
    ]
    for mode in ("off", "on"):
        run = result[mode]
        lines.append(
            f"  bus {mode:>3}: {run['cells']:>3} cells  {run['wall_s']:>8.2f}s  "
            f"{run['cells_per_sec']:>8.2f} cells/s"
        )
    lines.append(f"  on/off ratio: {result['on_over_off']:.3f}")
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Fidelity-tier speedup and figure agreement
# ---------------------------------------------------------------------- #

#: The fidelity gate fails when ``fidelity: auto`` delivers less than
#: this wall-clock speedup over ``packet`` on the long steady bench.
FIDELITY_MIN_SPEEDUP = 5.0

#: Long steady horizon (µs) where the fluid tier amortizes its lead-in
#: and calibration windows; ~120 ms dominated by jumpable steady time,
#: which is the regime the tier exists for.
FIDELITY_BENCH_DURATION_US = 120_000.0

#: The fidelity bench runs in stable underload — the regime the fluid
#: extrapolation is valid in — not at the fastpath bench's
#: near-saturation 10.5 Gbps operating point, where the baseline's
#: saturated NF worker correctly makes the controller refuse to jump.
FIDELITY_BENCH_RATE_GBPS = 6.0


def _measure_fidelity_mode(
    build: Callable[[float], ScenarioConfig],
    rate_gbps: float,
    time_scale: float,
    duration_us: float,
    fidelity: str,
) -> Dict[str, object]:
    """Run baseline-vs-PayloadPark once in one fidelity tier."""
    from dataclasses import replace

    from repro.orchestrator.executor import flatten_comparison

    with default_fast_path(True):
        scenario = replace(
            build(rate_gbps), duration_us=duration_us, fidelity=fidelity
        )
        runner = ExperimentRunner(time_scale=time_scale)
        started = time.perf_counter()
        result = runner.compare(scenario)
        wall_s = time.perf_counter() - started
    return {
        "wall_s": round(wall_s, 4),
        "metrics": flatten_comparison(result.comparison),
    }


def run_fidelity_bench(
    scenario: str = DEFAULT_SCENARIO,
    rate_gbps: float = FIDELITY_BENCH_RATE_GBPS,
    time_scale: float = DEFAULT_TIME_SCALE,
    duration_us: float = FIDELITY_BENCH_DURATION_US,
    repeat: int = 1,
) -> Dict[str, object]:
    """Measure the fluid tier's speedup and figure agreement vs packet.

    Paired rounds, same design as :func:`run_obs_overhead`: packet and
    auto run back to back within each round and the gated speedup is the
    best round's ``packet_wall / auto_wall``.  Both tiers are
    deterministic, so the figure metrics come straight from the timed
    runs — no extra measurement pass — and the agreement check
    (:func:`repro.validation.metamorphic.fluid_figure_breaches`) applies
    the same tolerance declaration the metamorphic relation certifies.
    """
    if scenario not in BENCH_SCENARIOS:
        raise ValueError(
            f"unknown bench scenario {scenario!r}; expected one of {sorted(BENCH_SCENARIOS)}"
        )
    if repeat < 1:
        raise ValueError("repeat must be at least 1")
    from repro.validation.metamorphic import fluid_figure_breaches

    build = BENCH_SCENARIOS[scenario]
    packet_runs, auto_runs, speedups = [], [], []
    for _ in range(repeat):
        packet = _measure_fidelity_mode(
            build, rate_gbps, time_scale, duration_us, "packet"
        )
        auto = _measure_fidelity_mode(
            build, rate_gbps, time_scale, duration_us, "auto"
        )
        packet_runs.append(packet)
        auto_runs.append(auto)
        if auto["wall_s"] > 0:
            speedups.append(packet["wall_s"] / auto["wall_s"])
    breaches = fluid_figure_breaches(
        packet_runs[0]["metrics"], auto_runs[0]["metrics"]
    )
    goodput_key = "payloadpark_goodput_to_nf_gbps"
    return {
        "scenario": scenario,
        "rate_gbps": rate_gbps,
        "time_scale": time_scale,
        "duration_us": duration_us,
        "repeat": repeat,
        "packet_wall_s": min(run["wall_s"] for run in packet_runs),
        "auto_wall_s": min(run["wall_s"] for run in auto_runs),
        "speedup": round(max(speedups), 2) if speedups else 0.0,
        "packet_goodput_gbps": packet_runs[0]["metrics"].get(goodput_key, 0.0),
        "auto_goodput_gbps": auto_runs[0]["metrics"].get(goodput_key, 0.0),
        "figure_breaches": breaches,
    }


def check_fidelity(
    result: Dict[str, object],
    min_speedup: float = FIDELITY_MIN_SPEEDUP,
) -> tuple:
    """Gate the fluid tier: fast enough AND figure-faithful.

    Returns ``(ok, message)``.  Fails when any figure metric left its
    tolerance band (correctness first) or the speedup fell below
    *min_speedup* (the tier is not earning its complexity).
    """
    breaches = result["figure_breaches"]
    speedup = float(result["speedup"])
    if breaches:
        keys = sorted(breaches)
        return False, (
            f"fluid tier BREACHED figure tolerances on {len(keys)} "
            f"metric(s): {keys}"
        )
    ok = speedup >= min_speedup
    message = (
        f"fluid-tier speedup {speedup:.2f}x over packet "
        f"(floor {min_speedup:g}x), figures within tolerance: "
        + ("ok" if ok else "TOO SLOW")
    )
    return ok, message


def format_fidelity(result: Dict[str, object]) -> str:
    """Human-readable summary of one fidelity measurement."""
    lines = [
        f"fidelity tiers: {result['scenario']} @ {result['rate_gbps']} Gbps, "
        f"{result['duration_us'] / 1000:g} ms horizon "
        f"(time_scale {result['time_scale']}, best of {result['repeat']})",
        f"  packet: {result['packet_wall_s']:>8.2f}s   "
        f"goodput {result['packet_goodput_gbps']:.4f} Gbps",
        f"    auto: {result['auto_wall_s']:>8.2f}s   "
        f"goodput {result['auto_goodput_gbps']:.4f} Gbps",
        f"  speedup: {result['speedup']:.2f}x   "
        f"figure breaches: {len(result['figure_breaches'])}",
    ]
    for key, detail in sorted(result["figure_breaches"].items()):
        lines.append(
            f"    BREACH {key}: packet {detail['packet']} vs "
            f"fluid {detail['fluid']} (bound {detail['bound']})"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Machine-readable bench artifacts
# ---------------------------------------------------------------------- #

def default_obs_artifact_path() -> Path:
    """The committed overhead artifact next to the benchmark scripts."""
    return Path(__file__).resolve().parents[2] / "benchmarks" / "obs_overhead.json"


def default_history_path() -> Path:
    """The append-only bench history next to the benchmark scripts."""
    return Path(__file__).resolve().parents[2] / "benchmarks" / "bench_history.jsonl"


def _stamp(result: Dict[str, object], kind: str) -> Dict[str, object]:
    return {
        "kind": kind,
        "measured_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        **result,
    }


def append_history(
    result: Dict[str, object],
    kind: str,
    history_path: Optional[Path] = None,
) -> Path:
    """Append one stamped bench measurement to the JSONL history.

    The history accumulates every ``repro bench`` run — fastpath and
    observability alike — so a regression can be traced back through
    time rather than just caught at the gate.  Returns the path written.
    """
    history = history_path or default_history_path()
    history.parent.mkdir(parents=True, exist_ok=True)
    with open(history, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(_stamp(result, kind), sort_keys=True) + "\n")
    return history


def write_bench_artifact(
    result: Dict[str, object],
    kind: str = "obs_overhead",
    artifact_path: Optional[Path] = None,
    history_path: Optional[Path] = None,
) -> Path:
    """Persist one bench result: overwrite the artifact, append to history.

    The artifact file always holds the latest measurement of its *kind*;
    only ``obs_overhead`` has a default location (the committed fastpath
    baseline in ``fastpath_baseline.json`` is reference data, not a
    rolling artifact).  Returns the artifact path written.
    """
    if artifact_path is not None:
        target = artifact_path
    elif kind == "obs_overhead":
        target = default_obs_artifact_path()
    else:
        raise ValueError(
            f"no default artifact path for bench kind {kind!r}; "
            "pass artifact_path explicitly"
        )
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(_stamp(result, kind), handle, indent=2, sort_keys=True)
        handle.write("\n")
    append_history(result, kind, history_path)
    return target
