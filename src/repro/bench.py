"""Fast-path benchmark: simulated-packets-per-wallclock-second, fast vs slow.

Backs the ``repro bench`` CLI subcommand and
``benchmarks/bench_fastpath.py``.  The benchmark runs one scenario —
the Fig. 7 FW → NAT → LB setup by default — through both deployments
(baseline and PayloadPark) twice: once on the reference simulation path
(``fast_path=False``: heapq event loop, string-parsed packet
construction, per-stage table walks, live cost-model queries) and once
on the fast path (calendar event loop, pooled packet templates,
compiled/cached pipeline walks, memoized NF verdicts, precomputed cost
model).  Both runs produce byte-identical reports — the golden-figure
suite enforces that — so the only thing that differs is wallclock.

The committed reference numbers live in
``benchmarks/fastpath_baseline.json``; ``check_result`` compares a
fresh measurement's speedup against them with a regression tolerance,
which is what the CI bench smoke step runs.  Absolute packets/sec vary
with the host, but the fast/slow *ratio* is fairly stable across
machines, so the ratio is what the baseline pins.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.experiments.runner import (
    DeploymentKind,
    ExperimentRunner,
    ScenarioConfig,
    default_fast_path,
)

#: Scenario name -> builder(rate_gbps) for benchmarkable setups.
BENCH_SCENARIOS: Dict[str, Callable[[float], ScenarioConfig]] = {}


def _register_scenarios() -> None:
    from repro.experiments import scenarios

    BENCH_SCENARIOS.update(
        {
            "fig07": lambda rate: scenarios.fw_nat_lb_10ge(send_rate_gbps=rate),
            "fig08": lambda rate: scenarios.fixed_size_40ge(
                "fw_nat", 1024, send_rate_gbps=rate
            ),
            "fig16": lambda rate: scenarios.small_packet_40ge(send_rate_gbps=rate),
        }
    )


_register_scenarios()

#: Default operating point: the Fig. 7 scenario near baseline saturation,
#: where both deployments carry real load.
DEFAULT_SCENARIO = "fig07"
DEFAULT_RATE_GBPS = 10.5
DEFAULT_TIME_SCALE = 1.0
QUICK_TIME_SCALE = 0.25

#: CI fails when the measured speedup falls more than this fraction
#: below the committed baseline speedup.
DEFAULT_TOLERANCE = 0.30


def _measure_mode(
    build: Callable[[float], ScenarioConfig],
    rate_gbps: float,
    time_scale: float,
    fast: bool,
) -> Dict[str, float]:
    """Run both deployments once in one mode; return wall time and packets."""
    with default_fast_path(fast):
        scenario = build(rate_gbps)
        runner = ExperimentRunner(time_scale=time_scale)
        started = time.perf_counter()
        baseline = runner.run_deployment(scenario, DeploymentKind.BASELINE)
        payloadpark = runner.run_deployment(scenario, DeploymentKind.PAYLOADPARK)
        wall_s = time.perf_counter() - started
    packets = baseline.packets_sent + payloadpark.packets_sent
    return {
        "wall_s": round(wall_s, 4),
        "packets": packets,
        "packets_per_sec": round(packets / wall_s, 1) if wall_s > 0 else 0.0,
    }


def run_bench(
    scenario: str = DEFAULT_SCENARIO,
    rate_gbps: float = DEFAULT_RATE_GBPS,
    time_scale: float = DEFAULT_TIME_SCALE,
    repeat: int = 1,
) -> Dict[str, object]:
    """Benchmark *scenario* on both simulation paths.

    ``repeat`` keeps the best (highest packets/sec) of N measurements
    per mode, which damps scheduler noise on loaded machines.
    """
    if scenario not in BENCH_SCENARIOS:
        raise ValueError(
            f"unknown bench scenario {scenario!r}; expected one of {sorted(BENCH_SCENARIOS)}"
        )
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    if repeat < 1:
        raise ValueError("repeat must be at least 1")
    build = BENCH_SCENARIOS[scenario]

    def best(fast: bool) -> Dict[str, float]:
        runs = [
            _measure_mode(build, rate_gbps, time_scale, fast) for _ in range(repeat)
        ]
        return max(runs, key=lambda run: run["packets_per_sec"])

    slow = best(fast=False)
    fast = best(fast=True)
    speedup = (
        fast["packets_per_sec"] / slow["packets_per_sec"]
        if slow["packets_per_sec"]
        else 0.0
    )
    return {
        "scenario": scenario,
        "rate_gbps": rate_gbps,
        "time_scale": time_scale,
        "slow": slow,
        "fast": fast,
        "speedup": round(speedup, 3),
    }


def default_baseline_path() -> Path:
    """The committed baseline next to the benchmark scripts."""
    return Path(__file__).resolve().parents[2] / "benchmarks" / "fastpath_baseline.json"


def load_baseline(path: Optional[Path] = None) -> Dict[str, object]:
    """Load the committed baseline numbers."""
    baseline_path = path or default_baseline_path()
    with open(baseline_path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_result(
    result: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> tuple:
    """Compare a fresh measurement against the committed baseline.

    Returns ``(ok, message)``.  The check is on the fast/slow speedup
    ratio — the machine-independent part of the measurement — and fails
    when it regresses more than *tolerance* below the baseline ratio.
    """
    baseline_speedup = float(baseline["speedup"])
    measured = float(result["speedup"])
    floor = baseline_speedup * (1.0 - tolerance)
    ok = measured >= floor
    message = (
        f"fast-path speedup {measured:.2f}x vs baseline {baseline_speedup:.2f}x "
        f"(floor {floor:.2f}x at {tolerance:.0%} tolerance): "
        + ("ok" if ok else "REGRESSION")
    )
    return ok, message


def format_result(result: Dict[str, object]) -> str:
    """Human-readable summary table for one benchmark result."""
    slow = result["slow"]
    fast = result["fast"]
    lines = [
        f"scenario: {result['scenario']} @ {result['rate_gbps']} Gbps "
        f"(time_scale {result['time_scale']})",
        f"  slow path: {slow['packets']:>8} packets  {slow['wall_s']:>8.2f}s  "
        f"{slow['packets_per_sec']:>10.0f} pkts/s",
        f"  fast path: {fast['packets']:>8} packets  {fast['wall_s']:>8.2f}s  "
        f"{fast['packets_per_sec']:>10.0f} pkts/s",
        f"  speedup:   {result['speedup']:.2f}x",
    ]
    return "\n".join(lines)
