"""Traffic generation: packet-size distributions, workloads and PktGen.

The evaluation drives the testbed with a DPDK PktGen replaying either
fixed-size UDP packets or a PCAP that reproduces the enterprise
datacenter packet-size distribution of Benson et al. (bimodal, mean
882 bytes, ≈ 30 % of packets too small to be split).  This subpackage
provides those size distributions, the flow population, and the packet
factory used by the traffic-generator node.
"""

from repro.traffic.distributions import (
    EmpiricalDistribution,
    FixedSizeDistribution,
    PacketSizeDistribution,
    enterprise_datacenter_distribution,
)
from repro.traffic.pktgen import PktGenConfig, PacketFactory
from repro.traffic.workload import Workload

__all__ = [
    "PacketSizeDistribution",
    "FixedSizeDistribution",
    "EmpiricalDistribution",
    "enterprise_datacenter_distribution",
    "Workload",
    "PktGenConfig",
    "PacketFactory",
]
