"""Workload descriptions: what kind of traffic PktGen offers.

A workload bundles the packet-size distribution, the flow population,
and the fraction of traffic aimed at addresses the firewall blacklists
(used in §6.2.4 to control the drop rate at the firewall).  Workloads
can also be loaded from or exported to PCAP files, mirroring how the
paper replays a PCAP to reproduce the enterprise traffic pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.packet.flows import FlowGenerator
from repro.packet.packet import ETHERNET_UDP_HEADER_BYTES, Packet
from repro.errors import WorkloadSpecError
from repro.packet.pcap import PcapWriter, read_pcap
from repro.traffic.distributions import (
    EmpiricalDistribution,
    FixedSizeDistribution,
    PacketSizeDistribution,
    enterprise_datacenter_distribution,
)

#: Source subnet that the Fig. 12 firewall blacklists; workloads steer
#: ``blacklisted_fraction`` of their packets into it.
BLACKLISTED_SUBNET = "192.168.0.0"


@dataclass
class Workload:
    """Traffic offered to the system under test.

    Attributes
    ----------
    name:
        Label used in reports.
    sizes:
        Frame-size distribution.
    flows:
        5-tuple population generator.
    blacklisted_fraction:
        Fraction of packets whose source address falls inside the
        firewall's blacklisted subnet (0 disables it).
    """

    name: str
    sizes: PacketSizeDistribution
    flows: FlowGenerator = field(default_factory=FlowGenerator)
    blacklisted_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.blacklisted_fraction <= 1.0:
            raise WorkloadSpecError("blacklisted_fraction must lie in [0, 1]")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def fixed_size(cls, size: int, flow_count: int = 1024,
                   blacklisted_fraction: float = 0.0) -> "Workload":
        """Fixed-size UDP packets (the §6.2.2 packet-size sweep)."""
        return cls(
            name=f"fixed-{size}B",
            sizes=FixedSizeDistribution(size),
            flows=FlowGenerator(flow_count=flow_count),
            blacklisted_fraction=blacklisted_fraction,
        )

    @classmethod
    def enterprise(cls, flow_count: int = 4096,
                   blacklisted_fraction: float = 0.0) -> "Workload":
        """The enterprise datacenter mix of Fig. 6."""
        return cls(
            name="enterprise-dc",
            sizes=enterprise_datacenter_distribution(),
            flows=FlowGenerator(flow_count=flow_count),
            blacklisted_fraction=blacklisted_fraction,
        )

    @classmethod
    def from_pcap(cls, path: Union[str, Path], flow_count: int = 1024,
                  name: Optional[str] = None) -> "Workload":
        """Build a workload whose size distribution matches a PCAP capture."""
        records = read_pcap(path)
        if not records:
            raise WorkloadSpecError(f"PCAP {path} contains no packets")
        counts = {}
        for record in records:
            size = max(len(record.data), 64)
            counts[size] = counts.get(size, 0) + 1
        total = sum(counts.values())
        points = [(size, count / total) for size, count in sorted(counts.items())]
        return cls(
            name=name or f"pcap:{Path(path).name}",
            sizes=EmpiricalDistribution(points),
            flows=FlowGenerator(flow_count=flow_count),
        )

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    def mean_frame_bytes(self) -> float:
        """Expected frame size in bytes."""
        return self.sizes.mean()

    def packets_per_second(self, rate_gbps: float) -> float:
        """Offered packet rate at *rate_gbps* of L2 bytes."""
        return rate_gbps * 1e9 / 8.0 / self.mean_frame_bytes()

    def useful_fraction(self) -> float:
        """Fraction of offered bytes that are useful (headers), i.e. ideal goodput ratio."""
        return ETHERNET_UDP_HEADER_BYTES / self.mean_frame_bytes()

    # ------------------------------------------------------------------ #
    # PCAP export
    # ------------------------------------------------------------------ #

    def export_pcap(self, path: Union[str, Path], packet_count: int = 1000,
                    seed: int = 7, rate_gbps: float = 10.0) -> int:
        """Write *packet_count* representative frames to a PCAP file.

        This mirrors the paper's methodology of replaying a synthetic
        PCAP whose sizes follow the Benson distribution; the timestamps
        correspond to back-to-back transmission at *rate_gbps*.
        """
        import random

        rng = random.Random(seed)
        flows = self.flows.flows()
        timestamp = 0.0
        with PcapWriter(path) as writer:
            for index in range(packet_count):
                size = self.sizes.sample(rng)
                flow = flows[index % len(flows)]
                packet = Packet.udp(
                    src_ip=str(flow.src_ip),
                    dst_ip=str(flow.dst_ip),
                    src_port=flow.src_port,
                    dst_port=flow.dst_port,
                    total_size=max(size, ETHERNET_UDP_HEADER_BYTES),
                )
                writer.write(packet.to_bytes(), timestamp)
                timestamp += size * 8 / (rate_gbps * 1e9)
        return packet_count
