"""Packet-size distributions.

Fig. 6 of the paper shows the CDF of the packet sizes used to simulate
an enterprise datacenter traffic pattern, reproduced from Benson et
al.'s IMC'10 measurement study: a bimodal distribution with an average
packet size of 882 bytes in which roughly 30 % of packets carry fewer
than 160 payload bytes (and therefore are not split by PayloadPark).
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.errors import WorkloadSpecError
from repro.packet.packet import ETHERNET_UDP_HEADER_BYTES

#: Smallest Ethernet frame we generate (headers only would be 42 bytes,
#: but the classic minimum frame size is 64).
MIN_FRAME_BYTES = 64
MAX_FRAME_BYTES = 1514


class PacketSizeDistribution:
    """Base class: sample frame sizes (Ethernet through payload, in bytes)."""

    def sample(self, rng: random.Random) -> int:
        """Draw one frame size."""
        raise NotImplementedError

    def mean(self) -> float:
        """Expected frame size (used for rate → pps conversions and reports)."""
        raise NotImplementedError

    def cdf_points(self) -> List[Tuple[int, float]]:
        """Return ``(size, cumulative probability)`` pairs for plotting (Fig. 6)."""
        raise NotImplementedError


@dataclass(frozen=True)
class FixedSizeDistribution(PacketSizeDistribution):
    """Every frame has the same size (the fixed-size experiments of §6.2.2)."""

    size: int

    def __post_init__(self) -> None:
        if not MIN_FRAME_BYTES <= self.size <= MAX_FRAME_BYTES:
            raise WorkloadSpecError(
                f"frame size must be within [{MIN_FRAME_BYTES}, {MAX_FRAME_BYTES}], "
                f"got {self.size}"
            )

    def sample(self, rng: random.Random) -> int:
        return self.size

    def mean(self) -> float:
        return float(self.size)

    def cdf_points(self) -> List[Tuple[int, float]]:
        return [(self.size - 1, 0.0), (self.size, 1.0)]


class EmpiricalDistribution(PacketSizeDistribution):
    """A discrete mixture described by ``(size, probability)`` pairs."""

    def __init__(self, points: Sequence[Tuple[int, float]]) -> None:
        if not points:
            raise WorkloadSpecError("an empirical distribution needs at least one point")
        for _size, weight in points:
            if weight < 0:
                raise WorkloadSpecError("probabilities cannot be negative")
            if not math.isfinite(weight):
                raise WorkloadSpecError(f"probability {weight!r} is not finite")
        total = sum(weight for _size, weight in points)
        if total <= 0:
            raise WorkloadSpecError("probabilities must sum to a positive value")
        self._sizes: List[int] = []
        self._cumulative: List[float] = []
        running = 0.0
        for size, weight in sorted(points):
            if not MIN_FRAME_BYTES <= size <= MAX_FRAME_BYTES:
                raise WorkloadSpecError(f"size {size} outside [{MIN_FRAME_BYTES}, {MAX_FRAME_BYTES}]")
            if self._sizes and size == self._sizes[-1]:
                raise WorkloadSpecError(f"duplicate size {size}; merge its probability mass first")
            running += weight / total
            self._sizes.append(size)
            self._cumulative.append(running)
        self._cumulative[-1] = 1.0

    @classmethod
    def from_cdf(cls, points: Sequence[Tuple[int, float]]) -> "EmpiricalDistribution":
        """Build from ``(size, cumulative_probability)`` pairs, validated.

        The pairs must be non-empty, with strictly increasing sizes,
        strictly increasing cumulative values each inside ``(0, 1]``, and
        a final value of 1.0.  Anything else would silently mis-sample
        through :func:`bisect.bisect_left`, so it raises ``ValueError``
        instead.
        """
        if not points:
            raise WorkloadSpecError("a CDF needs at least one point")
        previous_size = None
        previous_cumulative = 0.0
        for size, cumulative in points:
            if not isinstance(cumulative, (int, float)) or not math.isfinite(cumulative):
                raise WorkloadSpecError(f"CDF value {cumulative!r} is not a finite number")
            if previous_size is not None and size <= previous_size:
                raise WorkloadSpecError(
                    f"CDF sizes must be strictly increasing (got {size} after {previous_size})"
                )
            if not 0.0 < cumulative <= 1.0:
                raise WorkloadSpecError(f"CDF value {cumulative} outside (0, 1]")
            if cumulative <= previous_cumulative:
                raise WorkloadSpecError(
                    "CDF values must be strictly increasing "
                    f"(got {cumulative} after {previous_cumulative})"
                )
            if not MIN_FRAME_BYTES <= size <= MAX_FRAME_BYTES:
                raise WorkloadSpecError(f"size {size} outside [{MIN_FRAME_BYTES}, {MAX_FRAME_BYTES}]")
            previous_size = size
            previous_cumulative = cumulative
        if abs(points[-1][1] - 1.0) > 1e-9:
            raise WorkloadSpecError(f"CDF must end at 1.0, got {points[-1][1]}")
        weights: List[Tuple[int, float]] = []
        previous_cumulative = 0.0
        for size, cumulative in points:
            weights.append((size, cumulative - previous_cumulative))
            previous_cumulative = cumulative
        return cls(weights)

    def sample(self, rng: random.Random) -> int:
        position = rng.random()
        index = bisect.bisect_left(self._cumulative, position)
        index = min(index, len(self._sizes) - 1)
        return self._sizes[index]

    def mean(self) -> float:
        previous = 0.0
        expectation = 0.0
        for size, cumulative in zip(self._sizes, self._cumulative):
            expectation += size * (cumulative - previous)
            previous = cumulative
        return expectation

    def cdf_points(self) -> List[Tuple[int, float]]:
        return list(zip(self._sizes, self._cumulative))

    def fraction_below(self, frame_size: int) -> float:
        """Fraction of packets strictly smaller than *frame_size* bytes."""
        fraction = 0.0
        for size, cumulative in zip(self._sizes, self._cumulative):
            if size < frame_size:
                fraction = cumulative
            else:
                break
        return fraction


def _clamped_numeric_mean(cdf: Callable[[float], float]) -> float:
    """Mean of a size law clamped to the legal frame range.

    Uses the tail-sum identity ``E[X] = min + Σ P(X > s)`` over the
    integer frame sizes, which is exact for the integer-truncated samples
    the ``sample`` implementations return (up to truncation rounding).
    """
    return MIN_FRAME_BYTES + sum(
        1.0 - cdf(size) for size in range(MIN_FRAME_BYTES, MAX_FRAME_BYTES)
    )


def _analytic_cdf_points(cdf: Callable[[float], float]) -> List[Tuple[int, float]]:
    """A plotting-density grid of ``(size, cumulative)`` pairs."""
    sizes = list(range(MIN_FRAME_BYTES, MAX_FRAME_BYTES, 50)) + [MAX_FRAME_BYTES]
    return [(size, cdf(size) if size < MAX_FRAME_BYTES else 1.0) for size in sizes]


class ParetoSizeDistribution(PacketSizeDistribution):
    """Heavy-tailed (Pareto) frame sizes, clamped to the legal frame range.

    Most frames are small; a power-law tail reaches the MTU, mimicking
    mice-dominated datacenter traffic with elephant transfers.
    """

    def __init__(self, shape: float = 1.3, scale: float = 120.0) -> None:
        if shape <= 0:
            raise WorkloadSpecError("shape must be positive")
        if scale <= 0:
            raise WorkloadSpecError("scale must be positive")
        self.shape = shape
        self.scale = scale
        self._mean: float = None  # type: ignore[assignment]

    def _cdf(self, size: float) -> float:
        if size <= self.scale:
            return 0.0
        return 1.0 - (self.scale / size) ** self.shape

    def sample(self, rng: random.Random) -> int:
        size = int(rng.paretovariate(self.shape) * self.scale)
        return min(max(size, MIN_FRAME_BYTES), MAX_FRAME_BYTES)

    def mean(self) -> float:
        if self._mean is None:
            self._mean = _clamped_numeric_mean(self._cdf)
        return self._mean

    def cdf_points(self) -> List[Tuple[int, float]]:
        return _analytic_cdf_points(self._cdf)


class LognormalSizeDistribution(PacketSizeDistribution):
    """Lognormal frame sizes, clamped to the legal frame range."""

    def __init__(self, mu: float = 6.0, sigma: float = 0.8) -> None:
        if sigma <= 0:
            raise WorkloadSpecError("sigma must be positive")
        self.mu = mu
        self.sigma = sigma
        self._mean: float = None  # type: ignore[assignment]

    def _cdf(self, size: float) -> float:
        if size <= 0:
            return 0.0
        z = (math.log(size) - self.mu) / (self.sigma * math.sqrt(2.0))
        return 0.5 * (1.0 + math.erf(z))

    def sample(self, rng: random.Random) -> int:
        size = int(rng.lognormvariate(self.mu, self.sigma))
        return min(max(size, MIN_FRAME_BYTES), MAX_FRAME_BYTES)

    def mean(self) -> float:
        if self._mean is None:
            self._mean = _clamped_numeric_mean(self._cdf)
        return self._mean

    def cdf_points(self) -> List[Tuple[int, float]]:
        return _analytic_cdf_points(self._cdf)


def enterprise_datacenter_distribution() -> EmpiricalDistribution:
    """The Benson-style enterprise datacenter packet-size mix (Fig. 6).

    The mixture is bimodal: a cluster of small control-sized frames
    (64–200 bytes, ≈ 30 % of packets — these have payloads under 160
    bytes and are not split), a thin band of mid-sized frames, and a
    heavy cluster of near-MTU frames.  The mean is ≈ 882 bytes, matching
    the paper's reported average.
    """
    points: List[Tuple[int, float]] = []
    # Small frames: 30 % of packets spread over 64..198 bytes.
    small_sizes = [64, 90, 120, 150, 180, 198]
    for size in small_sizes:
        points.append((size, 0.30 / len(small_sizes)))
    # Mid-sized frames: 17 % spread over 250..1000 bytes.
    mid_sizes = [250, 400, 550, 700, 850, 1000]
    for size in mid_sizes:
        points.append((size, 0.17 / len(mid_sizes)))
    # Large frames: 53 % concentrated near the MTU.
    large_sizes = [(1340, 0.23), (1400, 0.20), (1500, 0.10)]
    for size, weight in large_sizes:
        points.append((size, weight))
    return EmpiricalDistribution(points)


def split_eligible_fraction(distribution: PacketSizeDistribution,
                            min_split_payload: int = 160) -> float:
    """Fraction of frames whose payload is large enough to be split."""
    threshold = ETHERNET_UDP_HEADER_BYTES + min_split_payload
    points = distribution.cdf_points()
    previous = 0.0
    eligible = 0.0
    for size, cumulative in points:
        weight = cumulative - previous
        if size >= threshold:
            eligible += weight
        previous = cumulative
    return eligible
