"""PktGen: configuration and packet factory for the traffic generator.

The paper's traffic generator is DPDK PktGen saturating the NF server
with UDP packets through two switch ports.  :class:`PktGenConfig`
captures the offered rate, burstiness and workload;
:class:`PacketFactory` builds the actual frames deterministically from a
seed so experiments are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import WorkloadSpecError
from repro.packet.ipv4 import IPv4Address
from repro.packet.packet import ETHERNET_UDP_HEADER_BYTES, Packet
from repro.packet.pool import FramePool
from repro.traffic.workload import BLACKLISTED_SUBNET, Workload

#: A reusable payload pattern; slices of it fill every generated frame so
#: the generator does not allocate fresh payload bytes per packet.
_PAYLOAD_PATTERN = bytes(range(256)) * 8

_BLACKLIST_BASE = IPv4Address.from_string(BLACKLISTED_SUBNET).value


def blacklisted_source(index: int) -> IPv4Address:
    """The *index*-th address inside the firewall's blacklisted subnet."""
    return IPv4Address(_BLACKLIST_BASE + (index % 65_000) + 1)


def build_udp_frame(
    size: int,
    flow,
    src_mac: str,
    dst_mac: str,
    src_ip: Optional[str] = None,
) -> Packet:
    """Build one UDP frame of *size* wire bytes for *flow*.

    The single frame-construction path shared by :class:`PacketFactory`
    and the workload subsystem's generative sources: payload bytes are
    slices of the reusable pattern, and *src_ip* (when given) overrides
    the flow's source for blacklist steering.
    """
    size = max(size, ETHERNET_UDP_HEADER_BYTES)
    payload_len = size - ETHERNET_UDP_HEADER_BYTES
    payload = _PAYLOAD_PATTERN[:payload_len]
    if len(payload) < payload_len:
        payload = (_PAYLOAD_PATTERN * (payload_len // len(_PAYLOAD_PATTERN) + 1))[:payload_len]
    return Packet.udp(
        src_mac=src_mac,
        dst_mac=dst_mac,
        src_ip=src_ip if src_ip is not None else str(flow.src_ip),
        dst_ip=str(flow.dst_ip),
        src_port=flow.src_port,
        dst_port=flow.dst_port,
        payload=payload,
    )


@dataclass
class PktGenConfig:
    """Offered-load description for one traffic generator.

    Attributes
    ----------
    rate_gbps:
        Offered load in gigabits of L2 frame bytes per second.
    workload:
        Frame sizes, flow population and blacklist fraction.
    burst_size:
        Packets emitted back-to-back per generation event (DPDK PktGen
        transmits in bursts; burstiness also shapes queueing downstream).
    seed:
        Seed for the size/flow sampling RNG.
    src_mac / dst_mac:
        Ethernet addresses stamped on generated frames (the destination
        is the traffic generator's own sink MAC so merged packets return
        to it, as in the paper's measurement loop).
    pooled:
        Build frames from per-flow :class:`~repro.packet.pool.FramePool`
        templates instead of re-parsing header strings per packet.  The
        frames are identical (same RNG draws, same packet-id sequence,
        same wire bytes); this is the packet half of the simulator's
        fast path, enabled via ``ScenarioConfig.fast_path``.
    """

    rate_gbps: float
    workload: Workload
    burst_size: int = 32
    seed: int = 42
    src_mac: str = "02:00:00:00:00:01"
    dst_mac: str = "02:00:00:00:00:02"
    pooled: bool = False

    def __post_init__(self) -> None:
        if self.rate_gbps <= 0:
            raise WorkloadSpecError("rate_gbps must be positive")
        if self.burst_size <= 0:
            raise WorkloadSpecError("burst_size must be positive")


class PacketFactory:
    """Deterministically builds frames according to a :class:`PktGenConfig`."""

    def __init__(self, config: PktGenConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self._flows = config.workload.flows.flows()
        self._flow_cursor = 0
        self._pool = (
            FramePool(config.src_mac, config.dst_mac) if config.pooled else None
        )
        self.packets_built = 0

    def next_packet(self) -> Packet:
        """Build the next frame (size, flow and blacklist marking).

        The pooled and string-parsing paths consume the RNG identically
        and emit byte-identical frames with the same packet-id sequence,
        so toggling ``config.pooled`` cannot change simulation results.
        """
        workload = self.config.workload
        size = workload.sizes.sample(self._rng)
        flow = self._flows[self._flow_cursor]
        self._flow_cursor = (self._flow_cursor + 1) % len(self._flows)

        # Steer a sampled fraction of packets into the firewall's
        # blacklisted subnet.
        blacklisted = (
            workload.blacklisted_fraction > 0
            and self._rng.random() < workload.blacklisted_fraction
        )
        if self._pool is not None:
            packet = self._pool.frame(
                size,
                flow,
                src_ip=blacklisted_source(self.packets_built) if blacklisted else None,
            )
        else:
            packet = build_udp_frame(
                size,
                flow,
                src_mac=self.config.src_mac,
                dst_mac=self.config.dst_mac,
                src_ip=str(blacklisted_source(self.packets_built)) if blacklisted else None,
            )
        self.packets_built += 1
        return packet

    def burst_bytes_estimate(self) -> float:
        """Expected L2 bytes per burst, used to pace generation events."""
        return self.config.burst_size * self.config.workload.mean_frame_bytes()
