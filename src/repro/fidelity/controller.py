"""The tier controller: switch between packet and fluid per segment.

:class:`TierController` replaces ``topology.run_until`` in the
experiment runner when ``ScenarioConfig.fidelity`` is ``auto`` or
``fluid``.  Its :meth:`~TierController.advance` walks the horizon
segment by segment:

* outside a steady segment (fault windows and their margins, ramps,
  arrival-model workloads) it simply runs the packet engine;
* inside a long-enough steady segment it runs a packet-level *lead-in*
  (settle), a packet-level *calibration window* (measure counter deltas
  and pressure gauges), and — if the gauges did not drift — performs one
  batch update equivalent to ``k`` more calibration windows: counters
  advance by ``k x`` the measured deltas, hardware cursors and pending
  machinery events shift with the clock
  (:meth:`~repro.netsim.eventloop.EventLoop.translate_events`), and the
  remainder (less than one window) is simulated packet-level up to the
  boundary, so every boundary is crossed with genuine in-flight state.

The controller is deliberately conservative: any rejected calibration
(drifting queues, filling SRAM, saturated servers mid-transient) falls
back to the packet engine for that segment, trading speed for the
certified figure-level agreement the fluid-vs-packet metamorphic
relation pins.

All window parameters scale with the runner's ``time_scale`` so the
tier engages at the same *relative* depth on shrunk test horizons as on
full-length campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import FidelityError
from repro.fidelity.segments import SteadySegment, plan_steady_segments
from repro.fidelity.state import FluidStateMap

__all__ = ["FluidParams", "TierController", "TierJump", "fluid_eligible"]


@dataclass(frozen=True)
class FluidParams:
    """Tuning knobs of the fluid tier (nanoseconds, pre-``time_scale``)."""

    #: Packet-level settle time after entering a steady segment.
    lead_ns: int = 250_000
    #: Packet-level measurement window; also the extrapolation quantum.
    #: Sized for sampling noise, not overhead: burst pacing re-samples
    #: packet sizes per burst, so a window covering N bursts carries
    #: ~(burst-size CV)/sqrt(N) relative noise that the jump multiplies
    #: into the extrapolated counters.  4 ms ≈ 150+ bursts at single-digit
    #: Gbps rates keeps it under ~1%, and a segment pays for exactly one
    #: calibration regardless of how far it jumps.
    calibration_ns: int = 4_000_000
    #: Settle margin simulated packet-level around every fault event.
    fault_margin_ns: int = 150_000
    #: Smallest multiple of the calibration window worth jumping over.
    min_jump_multiple: int = 2
    #: Stability tolerances: a calibration is rejected when any link
    #: queue, server residency or SRAM occupancy drifted further than
    #: this across the window.  The queue bound absorbs burst-phase
    #: noise (a 32-packet burst parks ~25 KB in the queue momentarily,
    #: so two instantaneous samples differ by up to that even in perfect
    #: steady state); *slow* saturation buildup hides under any such
    #: bound, which is what the busy-fraction probe below exists for.
    queue_tolerance_bytes: int = 65_536
    server_tolerance_packets: int = 8
    occupancy_tolerance_slots: int = 16
    #: A calibration is rejected when any link direction or NF worker
    #: was busy for more than this fraction of the window.  Persistent
    #: queue growth — the saturation transient whose extrapolation would
    #: invent drop-free megabytes of phantom backlog — is only possible
    #: at ~100% utilization, so this catches buildup too slow for the
    #: queue-drift bound while leaving stable underload (the tier's
    #: domain of validity) untouched.
    busy_fraction_max: float = 0.98

    def scaled(self, time_scale: float) -> "FluidParams":
        """Windows scaled to the runner's time scale (tolerances kept)."""
        if time_scale == 1.0:
            return self
        return FluidParams(
            lead_ns=max(int(self.lead_ns * time_scale), 1),
            calibration_ns=max(int(self.calibration_ns * time_scale), 1),
            fault_margin_ns=max(int(self.fault_margin_ns * time_scale), 1),
            min_jump_multiple=self.min_jump_multiple,
            queue_tolerance_bytes=self.queue_tolerance_bytes,
            server_tolerance_packets=self.server_tolerance_packets,
            occupancy_tolerance_slots=self.occupancy_tolerance_slots,
            busy_fraction_max=self.busy_fraction_max,
        )

    def min_profitable_ns(self) -> int:
        """Shortest segment a lead-in + calibration + jump can pay off in."""
        return self.lead_ns + self.calibration_ns * (1 + self.min_jump_multiple)


@dataclass
class TierJump:
    """Telemetry record of one executed fluid jump."""

    at_ns: int
    delta_ns: int
    multiple: int
    events_shifted: int


class TierController:
    """Advances a topology through time, fluid where provably safe.

    Parameters
    ----------
    scenario:
        The :class:`~repro.experiments.runner.ScenarioConfig` being run;
        supplies the fidelity mode, traffic model and fault spec.
    topology:
        The wired testbed (its event loop is the clock being driven).
    program:
        The switch program (PayloadPark counter bank and SRAM tables).
    duration_ns:
        Total simulated horizon (already time-scaled by the runner).
    time_scale:
        The runner's time scale; shrinks the fluid windows with it.
    observed:
        True when an observability plane is attached.  The plane's
        samplers schedule their own periodic events, which a clock jump
        would shift off-cadence — fluid is disabled, and ``fluid`` mode
        raises, matching the "observability must not change results"
        contract.
    """

    def __init__(
        self,
        scenario,
        topology,
        program,
        duration_ns: int,
        *,
        time_scale: float = 1.0,
        params: Optional[FluidParams] = None,
        observed: bool = False,
    ) -> None:
        mode = getattr(scenario, "fidelity", "packet")
        if mode not in ("auto", "fluid"):
            raise ValueError(f"TierController expects fidelity auto|fluid, got {mode!r}")
        self.topology = topology
        self.env = topology.env
        self.params = (params or FluidParams()).scaled(time_scale)
        self.jumps: List[TierJump] = []
        self.rejected_calibrations = 0
        if observed:
            self.segments: List[SteadySegment] = []
        else:
            self.segments = plan_steady_segments(
                scenario,
                duration_ns,
                margin_ns=self.params.fault_margin_ns,
                min_segment_ns=self.params.min_profitable_ns(),
            )
        if mode == "fluid" and not self.segments:
            raise FidelityError(
                f"fidelity: fluid requires a steady traffic segment, but "
                f"scenario {getattr(scenario, 'name', '?')!r} admits none "
                f"(arrival-model/replay workload, all-ramp schedule, "
                f"observability attached, or horizon too short); use "
                f"fidelity: auto to fall back to the packet engine"
            )
        self.state = FluidStateMap(topology, program)

    # ------------------------------------------------------------------ #
    # Advancing
    # ------------------------------------------------------------------ #

    def advance(self, horizon_ns: int) -> None:
        """Drive the simulation to *horizon_ns* (drop-in ``run_until``)."""
        env = self.env
        while env.now < horizon_ns:
            segment = self._segment_at(env.now)
            if segment is None:
                next_start = self._next_segment_start(env.now)
                target = min(horizon_ns, next_start) if next_start is not None else horizon_ns
                if target <= env.now:  # defensive: planning gave no progress
                    target = horizon_ns
                self.topology.run_until(target)
                continue
            end_ns = min(segment.end_ns, horizon_ns)
            if not self._try_fluid(end_ns):
                self.topology.run_until(end_ns)
        # Land exactly on the horizon (run_until clamps ``now`` forward).
        self.topology.run_until(horizon_ns)

    def _try_fluid(self, end_ns: int) -> bool:
        """Lead, calibrate and jump toward *end_ns*; False = run packet."""
        env = self.env
        p = self.params
        calib_end = env.now + p.lead_ns + p.calibration_ns
        if (end_ns - calib_end) // p.calibration_ns < p.min_jump_multiple:
            return False
        self.topology.run_until(env.now + p.lead_ns)
        before = self.state.snapshot()
        pressure_before = self.state.pressure()
        busy_before = self.state.busy_snapshot()
        self.topology.run_until(env.now + p.calibration_ns)
        after = self.state.snapshot()
        pressure_after = self.state.pressure()
        busy_after = self.state.busy_snapshot()
        multiple = (end_ns - env.now) // p.calibration_ns
        stable = self.state.pressure_stable(
            pressure_before,
            pressure_after,
            queue_tolerance_bytes=p.queue_tolerance_bytes,
            server_tolerance_packets=p.server_tolerance_packets,
            occupancy_tolerance_slots=p.occupancy_tolerance_slots,
        ) and not self.state.saturated(
            busy_before, busy_after, p.calibration_ns, p.busy_fraction_max
        )
        if multiple < p.min_jump_multiple or not stable:
            # Segment got consumed by lead+calibration, or the system is
            # still drifting (saturation onset, SRAM filling): stay
            # packet-level for the rest of this segment.
            self.rejected_calibrations += int(not stable)
            return False
        delta_ns = multiple * p.calibration_ns
        self.state.inject(before, after, multiple)
        self.state.shift_cursors(delta_ns)
        shifted = env.translate_events(end_ns, delta_ns)
        self.jumps.append(
            TierJump(
                at_ns=env.now - delta_ns,
                delta_ns=delta_ns,
                multiple=multiple,
                events_shifted=shifted,
            )
        )
        # The sub-window remainder to the boundary runs packet-level so
        # the boundary is crossed with genuine in-flight state.
        self.topology.run_until(end_ns)
        return True

    # ------------------------------------------------------------------ #
    # Segment lookup
    # ------------------------------------------------------------------ #

    def _segment_at(self, t_ns: int) -> Optional[SteadySegment]:
        for segment in self.segments:
            if segment.contains(t_ns):
                return segment
        return None

    def _next_segment_start(self, t_ns: int) -> Optional[int]:
        starts = [s.start_ns for s in self.segments if s.start_ns > t_ns]
        return min(starts) if starts else None

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #

    @property
    def fluid_time_ns(self) -> int:
        """Simulated time advanced by jumps instead of packet dispatch."""
        return sum(jump.delta_ns for jump in self.jumps)

    def summary(self) -> dict:
        return {
            "segments_planned": len(self.segments),
            "jumps": len(self.jumps),
            "fluid_time_ns": self.fluid_time_ns,
            "events_shifted": sum(j.events_shifted for j in self.jumps),
            "rejected_calibrations": self.rejected_calibrations,
        }


def fluid_eligible(
    scenario,
    time_scale: float = 1.0,
    params: Optional[FluidParams] = None,
) -> bool:
    """Whether ``fidelity: auto`` could ever leave the packet tier.

    Mirrors the controller's own planning (same scaled windows, same
    profitability floor) without building a topology, so callers — the
    fluid-vs-packet metamorphic relation, the bench gate — can decide
    between exact-equality and tolerance-band comparison up front.
    An attached observability spec disables fluid outright (the plane's
    samplers must not be shifted), matching the runner.
    """
    if getattr(scenario, "observe", None):
        return False
    p = (params or FluidParams()).scaled(time_scale)
    duration_ns = int(getattr(scenario, "duration_us", 0.0) * 1_000 * time_scale)
    segments = plan_steady_segments(
        scenario,
        duration_ns,
        margin_ns=p.fault_margin_ns,
        min_segment_ns=p.min_profitable_ns(),
    )
    return bool(segments)
