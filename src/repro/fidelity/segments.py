"""Steady-segment planning: where the fluid tier is allowed to engage.

A :class:`SteadySegment` is a half-open interval ``[start_ns, end_ns)``
of simulated time over which the offered load is a known constant and
no scheduled discontinuity falls — the precondition for the
calibrate-and-extrapolate jump in
:class:`~repro.fidelity.controller.TierController`.  Planning is pure
data-in/data-out (schedule phases, materialized fault events), so it is
unit-testable without a topology and runs once per deployment.

Ineligible scenarios yield an empty plan and the controller degrades to
pure packet simulation:

* arrival-model workloads (Poisson/MMPP/incast) — inter-burst gaps are
  random, there is no deterministic steady state to extrapolate;
* replay workloads (``stream_factory``) — the trace *is* the signal;
* ramp phases — the rate changes continuously;
* fault windows — the segment is cut around
  ``[at_ns - margin, at_ns + duration + margin]`` so onset and recovery
  transients are always simulated packet-level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["SteadySegment", "plan_steady_segments"]


@dataclass(frozen=True)
class SteadySegment:
    """One constant-rate, discontinuity-free stretch of simulated time."""

    start_ns: int
    end_ns: int
    rate_gbps: float

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def contains(self, t_ns: int) -> bool:
        return self.start_ns <= t_ns < self.end_ns


def plan_steady_segments(
    scenario,
    duration_ns: int,
    *,
    margin_ns: int = 0,
    min_segment_ns: int = 1,
) -> List[SteadySegment]:
    """Plan the steady segments of *scenario* over ``[0, duration_ns)``.

    Times are relative to traffic start (the runner starts traffic at
    ``now == 0``, so they are also absolute simulation times).
    *margin_ns* widens every fault window on both sides so boundary
    transients stay packet-level; segments shorter than
    *min_segment_ns* are dropped (they could never amortize a
    calibration anyway).
    """
    if duration_ns <= 0:
        return []
    traffic_model = getattr(scenario, "traffic_model", None)
    if traffic_model is not None:
        if traffic_model.arrivals is not None:
            return []  # stochastic gaps: no deterministic steady state
        if traffic_model.stream_factory is not None:
            return []  # replay: the trace is the workload
        if getattr(traffic_model, "transport_factory", None) is not None:
            return []  # closed loop: offered load is emergent, never steady
    schedule = traffic_model.schedule if traffic_model is not None else None
    if schedule is None:
        intervals = [(0, duration_ns, float(scenario.send_rate_gbps))]
    else:
        intervals = _constant_intervals(schedule, duration_ns)
    blackouts = _fault_blackouts(scenario, duration_ns, margin_ns)
    segments: List[SteadySegment] = []
    for start_ns, end_ns, rate_gbps in intervals:
        for piece_start, piece_end in _subtract(start_ns, end_ns, blackouts):
            if piece_end - piece_start >= min_segment_ns:
                segments.append(SteadySegment(piece_start, piece_end, rate_gbps))
    return segments


def _constant_intervals(schedule, duration_ns: int) -> List[Tuple[int, int, float]]:
    """Constant-rate phase intervals of *schedule* clipped to the horizon.

    Ramp phases are skipped.  Repeating schedules are unrolled cycle by
    cycle; a non-repeating schedule holds its final rate forever, so the
    tail past the last phase is one more constant interval.  Adjacent
    intervals at the same rate merge (a phase boundary with no rate
    discontinuity is not a boundary for the fluid tier).
    """
    intervals: List[Tuple[int, int, float]] = []

    def add(start_ns: int, end_ns: int, rate_gbps: float) -> None:
        start_ns = max(start_ns, 0)
        end_ns = min(end_ns, duration_ns)
        if end_ns <= start_ns:
            return
        if intervals and intervals[-1][1] == start_ns and intervals[-1][2] == rate_gbps:
            intervals[-1] = (intervals[-1][0], end_ns, rate_gbps)
        else:
            intervals.append((start_ns, end_ns, rate_gbps))

    cycle_start = 0
    while cycle_start < duration_ns:
        elapsed = cycle_start
        for phase in schedule.phases:
            if phase.start_gbps == phase.end_gbps:
                add(elapsed, elapsed + phase.duration_ns, float(phase.start_gbps))
            elapsed += phase.duration_ns
            if elapsed >= duration_ns:
                break
        if not schedule.repeat:
            # The final phase's end rate holds forever past the profile.
            add(schedule.total_duration_ns, duration_ns,
                float(schedule.phases[-1].end_gbps))
            break
        cycle_start += schedule.total_duration_ns
    return intervals


def _fault_blackouts(
    scenario, duration_ns: int, margin_ns: int
) -> List[Tuple[int, int]]:
    """Merged, sorted intervals around every materialized fault event."""
    faults = getattr(scenario, "faults", None)
    if faults is None:
        return []
    from repro.faults.schedule import EventSchedule

    schedule = EventSchedule.from_spec(faults)
    raw: List[Tuple[int, int]] = []
    for event in schedule.materialize(scenario.seed, duration_ns):
        window_ns = int(event.params.get("duration_ns", 0) or 0)
        raw.append((event.at_ns - margin_ns, event.at_ns + window_ns + margin_ns))
    return _merge(raw)


def _merge(intervals: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for start_ns, end_ns in intervals[1:]:
        if start_ns <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end_ns))
        else:
            merged.append((start_ns, end_ns))
    return merged


def _subtract(
    start_ns: int, end_ns: int, blackouts: List[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """``[start, end)`` minus the (merged, sorted) blackout intervals."""
    pieces: List[Tuple[int, int]] = []
    cursor = start_ns
    for black_start, black_end in blackouts:
        if black_end <= cursor:
            continue
        if black_start >= end_ns:
            break
        if black_start > cursor:
            pieces.append((cursor, black_start))
        cursor = max(cursor, black_end)
    if cursor < end_ns:
        pieces.append((cursor, end_ns))
    return pieces
