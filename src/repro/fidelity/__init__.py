"""Tiered-fidelity engine: a calibrated fluid tier over the packet engine.

PR 3's fast path hit the per-event dispatch wall (~1.6x steady-state);
this package breaks it by not paying per-packet cost where nothing
interesting happens.  A *steady traffic segment* — constant offered
rate, no fault window, no arrival-model burstiness — reaches a
statistical steady state within a short lead-in, after which every
calibration-window's worth of simulated time produces (statistically)
the same counter increments.  The fluid tier therefore:

1. plans the run into steady segments and boundary regions
   (:mod:`repro.fidelity.segments`): fault windows from the
   :class:`~repro.faults.schedule.EventSchedule`, rate discontinuities
   and ramps from the :class:`~repro.workloads.schedule.TraceSchedule`,
   and arrival-model/replay workloads (never steady);
2. inside a long-enough steady segment, simulates a packet-level
   *lead-in* (settle) and a *calibration window* (measure), then
   performs one closed-form batch update for the largest integer
   multiple ``k`` of the calibration window that fits before the
   boundary: every monotone counter advances by ``k x`` its calibration
   delta (exact integers — conservation identities survive by
   construction), absolute-time hardware cursors shift with the clock,
   and pending machinery events ride along via
   :meth:`~repro.netsim.eventloop.EventLoop.translate_events`
   (:mod:`repro.fidelity.state`, :mod:`repro.fidelity.controller`);
3. re-enters the packet engine for the sub-window remainder, so every
   boundary (fault onset, phase change, measurement horizon) is crossed
   packet-level with genuine in-flight state.

A calibration is *rejected* — the controller stays packet-level — when
the system was still drifting across it (queue growth, server backlog,
SRAM occupancy movement), which is exactly the SRAM-pressure /
saturation regime where fluid extrapolation would lie.

The ``fidelity`` knob on
:class:`~repro.experiments.runner.ScenarioConfig` selects the tier:
``packet`` (default) never leaves the packet engine, ``auto`` uses the
fluid tier on eligible segments and silently degrades to pure packet
when none exist, and ``fluid`` is ``auto`` that raises
:class:`FidelityError` when the scenario admits no steady segment.
Figure-level agreement between ``auto`` and ``packet`` is certified by
the ``fluid_vs_packet`` metamorphic relation and gated in CI by
``repro bench --fidelity-check``.
"""

from repro.errors import FidelityError
from repro.fidelity.controller import (
    FluidParams,
    TierController,
    TierJump,
    fluid_eligible,
)
from repro.fidelity.segments import SteadySegment, plan_steady_segments
from repro.fidelity.state import FluidStateMap

__all__ = [
    "FidelityError",
    "FluidParams",
    "FluidStateMap",
    "SteadySegment",
    "TierController",
    "TierJump",
    "fluid_eligible",
    "plan_steady_segments",
]
