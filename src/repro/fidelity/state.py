"""Materialize/absorb simulation state across a fluid clock jump.

:class:`FluidStateMap` enumerates, once per run, every piece of mutable
testbed state the jump must touch, split by how time treats it:

* **Monotone counters** (generator/server/NIC/PCIe/switch/link counters
  and the PayloadPark counter bank) advance by ``k x`` their calibration
  delta.  The injection is exact integer arithmetic on the very deltas
  the calibration measured, so every conservation identity that held
  over the calibration window holds over the extrapolated window by
  construction.
* **Absolute-time cursors** (link serialization horizons, NIC ring
  readiness, the NF worker's free-at time) shift with the clock so the
  packet engine resumes with the same *relative* backlog it had at
  calibration end.
* **Live gauges** (queued bytes, packets in the server, parked payloads
  in SRAM, latency samples, peak trackers) are deliberately left alone:
  they describe in-flight state, which the jump preserves as-is — the
  pending events carrying that state ride along via
  ``translate_events``.  The same gauges double as the *stability
  probe*: if any of them drifted across the calibration window the
  system was not in steady state and the jump is refused.

Generator schedule anchors (``_start_ns``, ``_stop_at_ns``) are *not*
shifted: the jump advances simulated time through the schedule, so the
phase position must advance with it.  PayloadPark lookup-table slots
carry generation clocks and probe-count expiry, not nanosecond
timestamps — translation leaves them valid untouched.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

__all__ = ["FluidStateMap"]

#: (object kind docs live on the classes; names checked at build time)
_GENERATOR_COUNTERS = (
    "packets_sent",
    "bytes_sent",
    "packets_received",
    "useful_bytes_received",
    "bytes_received",
)
_SERVER_COUNTERS = (
    "accepted_packets",
    "processed_packets",
    "forwarded_packets",
    "chain_dropped_packets",
    "explicit_drop_notifications",
    "overflow_drops",
    "busy_ns",
)
_NIC_COUNTERS = ("rx_packets", "tx_packets", "rx_bytes", "tx_bytes", "rx_dropped")
_PCIE_COUNTERS = ("rx_bytes", "tx_bytes", "rx_transfers", "tx_transfers")
_SWITCH_COUNTERS = (
    "packets_in",
    "packets_out",
    "packets_dropped",
    "packets_to_nf",
    "useful_bytes_to_nf",
)
_LINK_COUNTERS = (
    "frames_sent",
    "frames_delivered",
    "frames_dropped",
    "bytes_sent",
    "bytes_dropped",
    "busy_ns",
    "frames_dropped_down",
    "frames_dropped_loss",
    "bytes_dropped_fault",
)
_DIRECTION_CURSORS = ("next_free_ns", "last_arrival_ns")
_NIC_CURSORS = ("rx_free_at_ns", "tx_free_at_ns")


class FluidStateMap:
    """Every counter, cursor and gauge the fluid jump must account for."""

    def __init__(self, topology, program) -> None:
        self._counter_cells: List[Tuple[Any, str]] = []
        self._dict_cells: List[Tuple[Any, str]] = []
        self._cursor_cells: List[Tuple[Any, str]] = []
        self._gauge_cells: List[Tuple[Any, str]] = []
        self._busy_cells: List[Tuple[Any, str]] = []
        self._lookup_tables: List[Any] = []

        switch = topology.switch
        self._add_counters(switch, _SWITCH_COUNTERS)
        self._dict_cells.append((switch, "drop_reasons"))
        for attachment in topology.attachments:
            pktgen = attachment.pktgen
            server = attachment.server
            self._add_counters(pktgen, _GENERATOR_COUNTERS)
            self._add_counters(server, _SERVER_COUNTERS)
            self._add_counters(server.nic, _NIC_COUNTERS)
            self._add_counters(server.pcie, _PCIE_COUNTERS)
            self._add_cursors(server, ("_worker_free_at_ns",))
            self._add_cursors(server.nic, _NIC_CURSORS)
            self._gauge_cells.append((server, "_in_server"))
            self._busy_cells.append((server, "busy_ns"))
            for link in (*attachment.gen_links, attachment.server_link):
                # The direction objects are the link's private transmit
                # state; the fluid tier is the one consumer that must
                # reach through the public stats facade to shift the
                # serialization cursors with the clock.
                for direction in (link._a_to_b, link._b_to_a):
                    self._add_counters(direction.stats, _LINK_COUNTERS)
                    self._add_cursors(direction, _DIRECTION_CURSORS)
                    self._gauge_cells.append((direction, "queued_bytes"))
                    self._busy_cells.append((direction.stats, "busy_ns"))
        bank = getattr(program, "counters", None)
        if bank is not None:
            for counters in bank.counters.values():
                self._add_counters(counters, tuple(counters.as_dict()))
        for table in getattr(program, "lookup_tables", {}).values():
            self._lookup_tables.append(table)

    def _add_counters(self, obj: Any, names: Tuple[str, ...]) -> None:
        for name in names:
            getattr(obj, name)  # fail at build time on a renamed field
            self._counter_cells.append((obj, name))

    def _add_cursors(self, obj: Any, names: Tuple[str, ...]) -> None:
        for name in names:
            getattr(obj, name)
            self._cursor_cells.append((obj, name))

    # ------------------------------------------------------------------ #
    # Counters
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Tuple[List[float], List[Dict[str, int]]]:
        """Copy every monotone counter (scalar cells, then dict cells)."""
        scalars = [getattr(obj, name) for obj, name in self._counter_cells]
        dicts = [dict(getattr(obj, name)) for obj, name in self._dict_cells]
        return scalars, dicts

    def inject(self, before, after, k: int) -> None:
        """Advance every counter by ``k x`` its calibration delta.

        *before*/*after* are :meth:`snapshot` results bracketing the
        calibration window.  Exact integer (or float, for ``busy_ns``)
        arithmetic on measured deltas: identities linear in the counters
        are preserved exactly.
        """
        before_scalars, before_dicts = before
        after_scalars, after_dicts = after
        for (obj, name), old, new in zip(
            self._counter_cells, before_scalars, after_scalars
        ):
            delta = new - old
            if delta:
                setattr(obj, name, getattr(obj, name) + k * delta)
        for (obj, name), old, new in zip(self._dict_cells, before_dicts, after_dicts):
            live = getattr(obj, name)
            for key, value in new.items():
                delta = value - old.get(key, 0)
                if delta:
                    live[key] = live.get(key, 0) + k * delta

    # ------------------------------------------------------------------ #
    # Time cursors
    # ------------------------------------------------------------------ #

    def shift_cursors(self, delta_ns: int) -> None:
        """Shift every absolute-time hardware cursor by *delta_ns*."""
        for obj, name in self._cursor_cells:
            setattr(obj, name, getattr(obj, name) + delta_ns)

    # ------------------------------------------------------------------ #
    # Stability probe
    # ------------------------------------------------------------------ #

    def pressure(self) -> List[int]:
        """The live-gauge vector used to detect drift across a calibration.

        Queued bytes per link direction, packets resident in each
        server, and parked payloads per SRAM lookup table — anything
        trending here means the system is absorbing or shedding load
        (saturation onset, SRAM filling toward its threshold) and the
        segment is not safe to extrapolate.
        """
        values = [getattr(obj, name) for obj, name in self._gauge_cells]
        values.extend(table.occupancy() for table in self._lookup_tables)
        return values

    def busy_snapshot(self) -> List[float]:
        """Accumulated busy time per link direction and NF worker."""
        return [getattr(obj, name) for obj, name in self._busy_cells]

    def saturated(
        self,
        busy_before: List[float],
        busy_after: List[float],
        window_ns: int,
        busy_fraction_max: float,
    ) -> bool:
        """True when any resource ran at ~full utilization over the window.

        Saturation is the one unstable regime the instantaneous gauge
        drift can miss: a queue fed 0.5 Gbps over capacity grows only a
        few KB per calibration window — under the burst-phase noise
        floor — but the link feeding it is busy 100% of the time.
        """
        for before, after in zip(busy_before, busy_after):
            if (after - before) > window_ns * busy_fraction_max:
                return True
        return False

    def pressure_stable(
        self,
        before: List[int],
        after: List[int],
        *,
        queue_tolerance_bytes: int,
        server_tolerance_packets: int,
        occupancy_tolerance_slots: int,
    ) -> bool:
        """True when no gauge drifted beyond its tolerance."""
        index = 0
        for obj, name in self._gauge_cells:
            drift = abs(after[index] - before[index])
            limit = (
                server_tolerance_packets
                if name == "_in_server"
                else queue_tolerance_bytes
            )
            if drift > limit:
                return False
            index += 1
        for _table in self._lookup_tables:
            if abs(after[index] - before[index]) > occupancy_tolerance_slots:
                return False
            index += 1
        return True
