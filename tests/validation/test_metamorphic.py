"""Metamorphic relations: clean on main, violated under injected bugs."""

from dataclasses import replace

import pytest

from repro.experiments.scenarios import (
    fw_nat_lb_10ge,
    functional_equivalence_scenario,
    workload_scenario,
)
from repro.nf import server as nf_server
from repro.packet import pool
from repro.validation.metamorphic import (
    FastSlowEquivalence,
    FluidPacketEquivalence,
    RateMonotonicity,
    SeedDeterminism,
    TimeScaleInvariance,
    build_relations,
    comparison_metrics,
    fluid_figure_breaches,
)


def _small(scenario, duration_us=500.0):
    return replace(scenario, duration_us=duration_us, warmup_us=duration_us / 4)


class TestRelationsHoldOnMain:
    def test_fast_slow_equivalence_at_an_arbitrary_point(self):
        scenario = _small(fw_nat_lb_10ge(7.3))  # not a golden operating point
        assert FastSlowEquivalence().check(scenario) == []

    def test_fast_slow_equivalence_on_a_generative_workload(self):
        scenario = _small(workload_scenario("heavy-tail", send_rate_gbps=5.0))
        assert FastSlowEquivalence().check(scenario) == []

    def test_seed_determinism(self):
        scenario = _small(fw_nat_lb_10ge(8.0))
        assert SeedDeterminism().check(scenario) == []

    def test_seed_determinism_accepts_a_reference_run(self):
        scenario = _small(fw_nat_lb_10ge(8.0))
        reference = comparison_metrics(scenario)
        assert SeedDeterminism().check(scenario, reference=reference) == []

    def test_time_scale_invariance(self):
        scenario = _small(functional_equivalence_scenario(4.0), duration_us=800.0)
        assert TimeScaleInvariance(factor=2.0).check(scenario) == []

    def test_rate_monotonicity(self):
        scenario = _small(fw_nat_lb_10ge(8.0), duration_us=800.0)
        assert RateMonotonicity(factor=0.5).check(scenario) == []

    def test_registry_builds_relations(self):
        relations = build_relations(
            ["fast_slow", "determinism", "time_scale", "rate_monotonicity"]
        )
        assert [type(r).__name__ for r in relations] == [
            "FastSlowEquivalence",
            "SeedDeterminism",
            "TimeScaleInvariance",
            "RateMonotonicity",
        ]
        with pytest.raises(ValueError):
            build_relations(["nope"])


class TestRelationsCatchInjectedBugs:
    def test_fast_slow_catches_a_pooled_frame_divergence(self, monkeypatch):
        # Injected bug: pooled templates build one extra wire byte, so the
        # fast path offers slightly more load than the reference path.
        original = pool._FrameTemplate.build

        def buggy(self, size):
            return original(self, size + 1)

        monkeypatch.setattr(pool._FrameTemplate, "build", buggy)
        scenario = _small(fw_nat_lb_10ge(8.0))
        violations = FastSlowEquivalence().check(scenario)
        assert violations
        assert violations[0].check == "fast-slow-equivalence"
        assert "diverges" in violations[0].message

    def test_determinism_catches_hidden_global_state(self, monkeypatch):
        # Injected bug: the server's service time depends on a process-wide
        # counter, so re-running the same scenario drifts.
        original = nf_server.NfServerModel.bottleneck_service_ns
        state = {"calls": 0}

        def drifting(self):
            state["calls"] += 1
            return original(self) + state["calls"]

        monkeypatch.setattr(nf_server.NfServerModel, "bottleneck_service_ns", drifting)
        scenario = _small(fw_nat_lb_10ge(8.0), duration_us=400.0)
        scenario = replace(scenario, fast_path=False)  # bypass the cost cache
        violations = SeedDeterminism().check(scenario)
        assert violations
        assert "hidden global state" in violations[0].message


class TestFluidPacketEquivalence:
    """The fluid tier's certification: auto vs packet, both regimes."""

    def _steady(self, rate=6.0, duration_us=30_000.0, **overrides):
        # Long enough (at time_scale 0.25) for the controller to jump.
        return replace(
            fw_nat_lb_10ge(rate), duration_us=duration_us, **overrides
        )

    def test_holds_on_a_long_steady_scenario(self):
        violations = FluidPacketEquivalence().check(
            self._steady(), time_scale=0.25
        )
        assert violations == []

    def test_holds_under_fault_injected_churn(self):
        # Fault windows fragment the steady plan; jumps between them
        # must still land every figure inside the tolerance band.
        violations = FluidPacketEquivalence().check(
            self._steady(faults="link-flap"), time_scale=0.25
        )
        assert violations == []

    def test_exact_equality_when_no_steady_segment_exists(self):
        # Arrival-model workloads admit no segment, so auto must never
        # leave the packet tier: the relation demands byte equality.
        scenario = _small(
            workload_scenario("enterprise-poisson", send_rate_gbps=4.0),
            duration_us=1_000.0,
        )
        violations = FluidPacketEquivalence().check(scenario)
        assert violations == []

    def test_registry_exposes_the_relation(self):
        (relation,) = build_relations(["fluid_vs_packet"])
        assert isinstance(relation, FluidPacketEquivalence)

    def test_catches_a_biased_extrapolation(self, monkeypatch):
        # Injected bug: the jump injects one extra multiple of every
        # calibration delta, inflating all extrapolated counters by
        # roughly one window's worth per jump — the relation must flag
        # the drifted figures.
        from repro.fidelity import state as fidelity_state

        original = fidelity_state.FluidStateMap.inject

        def biased(self, before, after, k):
            return original(self, before, after, int(k * 1.5))

        monkeypatch.setattr(fidelity_state.FluidStateMap, "inject", biased)
        violations = FluidPacketEquivalence().check(
            self._steady(), time_scale=0.25
        )
        assert violations
        assert violations[0].check == "fluid-packet-equivalence"
        assert "tolerance band" in violations[0].message

    def test_breach_helper_reports_bound_and_values(self):
        packet = {"baseline_packets_sent": 10_000}
        fluid = {"baseline_packets_sent": 12_000}
        breaches = fluid_figure_breaches(packet, fluid)
        assert "baseline_packets_sent" in breaches
        detail = breaches["baseline_packets_sent"]
        assert detail["packet"] == 10_000
        assert detail["fluid"] == 12_000
        # 5% rel + 6*sqrt(N) + 64 abs on the larger value.
        assert detail["bound"] == pytest.approx(
            12_000 * 0.05 + 6 * 12_000 ** 0.5 + 64
        )
