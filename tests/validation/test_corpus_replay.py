"""The fuzz corpus: entry round-trips and committed-corpus replay."""

import json

import pytest

from repro.orchestrator.spec import RunSpec
from repro.validation.corpus import (
    DEFAULT_CORPUS_DIR,
    corpus_entries,
    entry_from_failure,
    entry_relation_names,
    load_entry,
    replay_corpus,
    run_spec_from_entry,
    validate_entry_names,
    write_entry,
)
from repro.validation.fuzzer import FuzzFailure
from repro.validation.invariants import Violation


def _failure():
    original = RunSpec(
        scenario="workload",
        params={"workload": "bursty-mmpp", "send_rate_gbps": 8.0,
                "duration_us": 800.0, "warmup_us": 200.0, "seed": 7},
    )
    shrunk = RunSpec(
        scenario="workload",
        params={"send_rate_gbps": 4.0, "duration_us": 400.0,
                "warmup_us": 100.0, "seed": 7},
    )
    violation = Violation(
        check="fast-slow-equivalence",
        message="fast path diverges",
        scenario="workload-bursty-mmpp",
        deployment="both",
        details={"diffs": {"baseline_offered_gbps": {"left": 1, "right": 2}}},
    )
    return FuzzFailure(original=original, shrunk=shrunk, violations=[violation])


class TestCorpusEntries:
    def test_write_load_roundtrip(self, tmp_path):
        failure = _failure()
        path = write_entry(tmp_path, failure, seed=3)
        entry = load_entry(path)
        assert entry["scenario"] == "workload"
        assert entry["params"] == dict(failure.shrunk.params)
        assert entry["fuzz_seed"] == 3
        assert entry["original"]["params"] == dict(failure.original.params)
        assert entry["relations"] == ["fast-slow-equivalence"]
        run = run_spec_from_entry(entry)
        assert run.spec_hash == failure.shrunk.spec_hash

    def test_entry_relation_names_resolve_to_registry_names(self):
        entry = entry_from_failure(_failure(), seed=1)
        assert entry_relation_names(entry) == ["fast_slow"]
        entry["relations"] = ["seed-determinism", "time-scale-invariance"]
        assert entry_relation_names(entry) == ["determinism", "time_scale"]
        # Invariant-only entries fall back to the differential default.
        entry["relations"] = ["packet-conservation"]
        assert entry_relation_names(entry) == ["fast_slow"]

    def test_corpus_dir_gets_a_triage_readme(self, tmp_path):
        write_entry(tmp_path, _failure())
        assert (tmp_path / "README.md").exists()

    def test_load_entry_rejects_non_corpus_json(self, tmp_path):
        bad = tmp_path / "repro-bad.json"
        bad.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError):
            load_entry(bad)

    def test_entry_serialization_is_json_clean(self):
        payload = entry_from_failure(_failure(), seed=1)
        assert json.loads(json.dumps(payload)) == payload

    def test_missing_corpus_dir_is_empty(self, tmp_path):
        assert corpus_entries(tmp_path / "absent") == []
        summary = replay_corpus(tmp_path / "absent")
        assert summary == {"entries": 0, "failing": 0, "results": []}


class TestStaleCorpusEntries:
    """Registries evolve; replays of stale entries must fail actionably."""

    def _write(self, tmp_path, entry):
        path = tmp_path / "repro-stale.json"
        path.write_text(json.dumps(entry))
        return path

    def test_stale_workload_name_fails_with_a_clear_message(self, tmp_path):
        path = self._write(tmp_path, {
            "scenario": "workload",
            "params": {"workload": "enterprise-poission-typo", "seed": 1,
                       "duration_us": 400.0, "warmup_us": 100.0},
        })
        with pytest.raises(ValueError) as excinfo:
            replay_corpus(tmp_path)
        message = str(excinfo.value)
        assert "repro-stale.json" in message
        assert "enterprise-poission-typo" in message
        assert "no longer registered" in message
        assert "re-record" in message

    def test_stale_scenario_name_fails_with_a_clear_message(self, tmp_path):
        path = self._write(tmp_path, {
            "scenario": "workload_v1_renamed",
            "params": {"seed": 1},
        })
        with pytest.raises(ValueError, match="workload_v1_renamed"):
            replay_corpus(tmp_path)
        # The message is actionable, not a bare registry KeyError.
        with pytest.raises(ValueError, match="no longer registered"):
            validate_entry_names(load_entry(path), source=path)

    def test_stale_fault_profile_fails_with_a_clear_message(self, tmp_path):
        self._write(tmp_path, {
            "scenario": "workload",
            "params": {"workload": "enterprise-poisson", "seed": 1,
                       "faults": "retired-profile"},
        })
        with pytest.raises(ValueError, match="fault profile 'retired-profile'"):
            replay_corpus(tmp_path)

    def test_current_names_validate_clean(self):
        validate_entry_names({
            "scenario": "workload",
            "params": {"workload": "enterprise-poisson", "faults": "chaos-mix"},
        })


@pytest.mark.validation
class TestCommittedCorpus:
    def test_every_committed_repro_replays_clean(self):
        """Bugs the fuzzer ever found must stay fixed."""
        paths = corpus_entries(DEFAULT_CORPUS_DIR)
        if not paths:
            pytest.skip("no committed corpus entries yet")
        summary = replay_corpus(DEFAULT_CORPUS_DIR)
        assert summary["failing"] == 0, summary
