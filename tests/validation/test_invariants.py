"""The invariant engine: clean runs pass, tampered runs are caught."""

from dataclasses import replace

import pytest

from repro.experiments.runner import ExperimentRunner, run_observer
from repro.experiments.scenarios import (
    explicit_drop_scenario,
    fw_nat_lb_10ge,
    workload_scenario,
)
from repro.validation.engine import ValidationObserver, _TimeMonitor, check_scenario
from repro.validation.invariants import (
    GoodputBound,
    LatencyCausality,
    PacketConservation,
    ParkingSlotLeak,
    RegisterBounds,
    RetransmitAccounting,
)


def _small(scenario, duration_us=600.0):
    return replace(scenario, duration_us=duration_us, warmup_us=duration_us / 4)


@pytest.fixture(scope="module")
def observed_runs():
    """Both deployments of a small scenario, with observations retained."""
    observer = ValidationObserver(keep_observations=True)
    with run_observer(observer):
        ExperimentRunner().compare(_small(fw_nat_lb_10ge(8.0)))
    assert observer.runs_checked == 2
    return observer


def _payloadpark_obs(observer):
    return next(
        obs for obs in observer.observations if obs.deployment == "payloadpark"
    )


class TestCleanRuns:
    def test_no_violations_on_a_healthy_scenario(self, observed_runs):
        assert observed_runs.violations == []

    def test_check_scenario_reports_both_deployments(self):
        report = check_scenario(_small(fw_nat_lb_10ge(6.0), duration_us=400.0))
        assert report.ok
        assert report.runs_checked == 2
        assert report.as_dict()["ok"] is True

    def test_explicit_drop_scenario_is_clean(self):
        report = check_scenario(_small(explicit_drop_scenario(1, True), 400.0))
        assert report.ok, [str(v) for v in report.violations]

    def test_event_loops_are_drained(self, observed_runs):
        for obs in observed_runs.observations:
            assert obs.drained
            assert obs.residual_events == 0
            assert obs.time_violations == 0


class TestDetection:
    """Each invariant must fire when its condition is deliberately broken."""

    def test_conservation_detects_unaccounted_packets(self, observed_runs):
        obs = _payloadpark_obs(observed_runs)
        gen = obs.topology.attachments[0].pktgen
        gen.packets_sent += 1
        try:
            violations = PacketConservation().check(obs)
        finally:
            gen.packets_sent -= 1
        assert violations and violations[0].check == "packet-conservation"
        assert "delta 1" in violations[0].message

    def test_conservation_requires_a_drained_loop(self, observed_runs):
        obs = _payloadpark_obs(observed_runs)
        tampered = replace(obs, drained=False, residual_events=7)
        (violation,) = PacketConservation().check(tampered)
        assert "not drained" in violation.message

    def test_goodput_bound_detects_packet_inflation(self, observed_runs):
        obs = _payloadpark_obs(observed_runs)
        gen = obs.topology.attachments[0].pktgen
        original = gen.packets_received
        gen.packets_received = gen.packets_sent + 5
        try:
            violations = GoodputBound().check(obs)
        finally:
            gen.packets_received = original
        assert any("received" in v.message for v in violations)

    def test_goodput_bound_detects_goodput_above_offered(self, observed_runs):
        obs = _payloadpark_obs(observed_runs)
        report = replace(
            obs.reports[0], delivered_goodput_gbps=obs.reports[0].offered_gbps * 2 + 1
        )
        tampered = replace(obs, reports=[report])
        assert any(
            "exceeds offered load" in v.message for v in GoodputBound().check(tampered)
        )

    def test_latency_causality_detects_time_travel(self, observed_runs):
        obs = _payloadpark_obs(observed_runs)
        tampered = replace(obs, time_violations=3)
        assert any(
            "backwards" in v.message for v in LatencyCausality().check(tampered)
        )

    def test_latency_causality_detects_mean_above_max(self, observed_runs):
        obs = _payloadpark_obs(observed_runs)
        report = replace(obs.reports[0], avg_latency_us=10.0, p99_latency_us=5.0,
                         max_latency_us=5.0)
        tampered = replace(obs, reports=[report])
        assert any("exceeds" in v.message for v in LatencyCausality().check(tampered))

    def test_latency_causality_detects_acausal_samples(self, observed_runs):
        obs = _payloadpark_obs(observed_runs)
        report = replace(obs.reports[0], max_latency_us=obs.horizon_ns / 1_000.0 + 1)
        tampered = replace(obs, reports=[report])
        assert any("horizon" in v.message for v in LatencyCausality().check(tampered))

    def test_register_bounds_detects_out_of_range_occupancy(self, observed_runs):
        obs = _payloadpark_obs(observed_runs)
        table = next(iter(obs.program.lookup_tables.values()))
        original = table.occupancy
        table.occupancy = lambda: table.entries + 1
        try:
            violations = RegisterBounds().check(obs)
        finally:
            del table.occupancy
        assert any("occupancy" in v.message for v in violations)
        assert table.occupancy() == original()

    def test_parking_slot_leak_detects_counter_mismatch(self, observed_runs):
        obs = _payloadpark_obs(observed_runs)
        counters = next(iter(obs.program.counters.counters.values()))
        counters.splits += 1
        try:
            violations = ParkingSlotLeak().check(obs)
        finally:
            counters.splits -= 1
        assert violations and violations[0].check == "parking-slot-leak"


@pytest.fixture(scope="module")
def closed_loop_runs():
    """Both deployments of a closed-loop scenario, observations retained."""
    observer = ValidationObserver(keep_observations=True)
    with run_observer(observer):
        ExperimentRunner(time_scale=0.1).compare(workload_scenario("rpc-fanout"))
    assert observer.runs_checked == 2
    return observer


class TestRetransmitAccounting:
    """The goodput/throughput split survives adversarial counter edits."""

    def test_clean_closed_loop_run_passes(self, closed_loop_runs):
        assert closed_loop_runs.violations == []
        for obs in closed_loop_runs.observations:
            assert RetransmitAccounting().check(obs) == []

    def test_detects_duplicate_double_counted_into_goodput(self, closed_loop_runs):
        # The injected bug: a duplicate delivery's useful bytes are
        # credited to goodput as well (the exact double-count the
        # goodput-vs-throughput split exists to prevent).
        obs = _payloadpark_obs(closed_loop_runs)
        gen = obs.topology.attachments[0].pktgen
        gen.useful_bytes_received += 42
        try:
            violations = RetransmitAccounting().check(obs)
        finally:
            gen.useful_bytes_received -= 42
        assert violations
        assert any("goodput bytes" in v.message for v in violations)
        assert all(v.check == "retransmit-accounting" for v in violations)

    def test_detects_uncounted_retransmission(self, closed_loop_runs):
        obs = _payloadpark_obs(closed_loop_runs)
        transport = obs.topology.attachments[0].pktgen.transport
        transport.retx_segments += 1
        try:
            violations = RetransmitAccounting().check(obs)
        finally:
            transport.retx_segments -= 1
        assert any("retransmit count" in v.message or "first+retx" in v.message
                   for v in violations)

    def test_detects_phantom_unique_deliveries(self, closed_loop_runs):
        obs = _payloadpark_obs(closed_loop_runs)
        transport = obs.topology.attachments[0].pktgen.transport
        original = transport.unique_delivered_segments
        transport.unique_delivered_segments = transport.distinct_segments_sent + 3
        try:
            violations = RetransmitAccounting().check(obs)
        finally:
            transport.unique_delivered_segments = original
        assert any("ever sent" in v.message for v in violations)

    def test_open_loop_generators_must_report_zero_retransmits(self, observed_runs):
        obs = _payloadpark_obs(observed_runs)
        gen = obs.topology.attachments[0].pktgen
        assert RetransmitAccounting().check(obs) == []
        gen.retransmitted_packets += 1
        try:
            violations = RetransmitAccounting().check(obs)
        finally:
            gen.retransmitted_packets -= 1
        assert violations and "open-loop" in violations[0].message


class TestTimeMonitor:
    def test_counts_backward_steps_only(self):
        monitor = _TimeMonitor()
        for when in (0, 5, 5, 9):
            monitor(when)
        assert monitor.violations == 0
        monitor(3)
        monitor(12)
        monitor(11)
        assert monitor.violations == 2
