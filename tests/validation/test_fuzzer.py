"""The differential scenario fuzzer: generation, shrinking, acceptance."""

import random

import pytest

from repro.orchestrator.spec import build_scenario
from repro.packet import pool
from repro.validation.fuzzer import (
    check_run,
    descriptor_size,
    fuzz,
    generate_run,
    parse_budget,
    shrink,
)


class TestGeneration:
    def test_fixed_seed_reproduces_the_scenario_sequence(self):
        first = [generate_run(random.Random(9), i) for i in range(8)]
        second = [generate_run(random.Random(9), i) for i in range(8)]
        assert [r.spec_hash for r in first] == [r.spec_hash for r in second]

    def test_different_seeds_explore_different_scenarios(self):
        a = {generate_run(random.Random(1), i).spec_hash for i in range(8)}
        b = {generate_run(random.Random(2), i).spec_hash for i in range(8)}
        assert a != b

    def test_generated_descriptors_materialize(self):
        rng = random.Random(4)
        kinds = set()
        for index in range(20):
            run = generate_run(rng, index)
            kinds.add(run.scenario)
            scenario = build_scenario(run)
            assert scenario.duration_us > scenario.warmup_us > 0
        assert len(kinds) >= 3  # the space is actually explored

    def test_descriptor_size_rewards_simplification(self):
        rng = random.Random(4)
        run = generate_run(rng, 0)
        smaller_params = dict(run.params)
        smaller_params["duration_us"] = run.params["duration_us"] / 2
        from repro.orchestrator.spec import RunSpec

        smaller = RunSpec(scenario=run.scenario, params=smaller_params)
        assert descriptor_size(smaller) < descriptor_size(run)


class TestShrinking:
    def test_shrink_reaches_a_fixpoint_when_everything_fails(self):
        rng = random.Random(3)
        run = generate_run(rng, 0)
        shrunk = shrink(run, lambda candidate: True)
        assert descriptor_size(shrunk) < descriptor_size(run)
        # At the fixpoint no candidate is smaller and still "failing".
        from repro.validation.fuzzer import _shrink_candidates

        assert all(
            descriptor_size(c) >= descriptor_size(shrunk)
            for c in _shrink_candidates(shrunk)
        )

    def test_shrink_keeps_the_original_when_nothing_simpler_fails(self):
        rng = random.Random(3)
        run = generate_run(rng, 0)
        shrunk = shrink(run, lambda candidate: False)
        assert shrunk is run


class TestBudgets:
    def test_parse_budget(self):
        assert parse_budget("30s") == 30.0
        assert parse_budget("2m") == 120.0
        assert parse_budget("45") == 45.0
        assert parse_budget("500ms") == 0.5
        with pytest.raises(ValueError):
            parse_budget("soon")
        with pytest.raises(ValueError):
            parse_budget("-3s")

    def test_budget_bounds_the_session(self):
        result = fuzz(seed=5, budget_s=0.01, max_scenarios=50)
        assert result.scenarios_checked <= 2


@pytest.mark.validation
class TestAcceptance:
    """The ISSUE acceptance criteria for the fuzzer, verbatim."""

    def test_fifty_scenarios_on_main_are_violation_free(self):
        result = fuzz(seed=0, max_scenarios=50)
        assert result.scenarios_checked >= 50
        failures = [
            (f.original.scenario, dict(f.original.params),
             [str(v) for v in f.violations])
            for f in result.failures
        ]
        assert result.ok, failures

    def test_injected_bug_is_caught_with_a_half_size_repro(
        self, monkeypatch, tmp_path
    ):
        # Injected bug: pooled frame templates build four extra wire
        # bytes, so the fast path diverges from the reference path at
        # every operating point.
        original = pool._FrameTemplate.build

        def buggy(self, size):
            return original(self, size + 4)

        monkeypatch.setattr(pool._FrameTemplate, "build", buggy)
        corpus = tmp_path / "corpus"
        result = fuzz(seed=3, max_scenarios=1, corpus_dir=str(corpus))
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert any(v.check == "fast-slow-equivalence" for v in failure.violations)
        # The shrunk repro is at most half the original scenario's size.
        assert failure.shrunk_size <= failure.original_size / 2
        # The repro landed in the corpus and still fails while the bug
        # is live...
        entries = sorted(corpus.glob("repro-*.json"))
        assert len(entries) == 1
        from repro.validation.corpus import load_entry, replay_entry

        assert replay_entry(load_entry(entries[0]))
        # ...and replays clean once the bug is fixed.
        monkeypatch.setattr(pool._FrameTemplate, "build", original)
        assert replay_entry(load_entry(entries[0])) == []

    def test_shrunk_repro_descriptor_survives_check_run_roundtrip(self):
        # A shrunk descriptor is plain data; re-checking it on main (no
        # injected bug) is clean.
        rng = random.Random(3)
        run = generate_run(rng, 0)
        assert check_run(run) == []
