"""Reduced-grid golden cases for every figure/table experiment.

Each case maps a name to a zero-argument callable returning the
experiment's JSON-serializable payload on a deliberately small grid
(two grid points, scaled-down simulated duration) so the whole suite
runs in seconds while still exercising every experiment end to end.

The same definitions serve two consumers:

* ``tests/golden/regenerate.py`` writes ``<name>.json`` next to this
  file from the **slow (reference) path** — the reference semantics are
  the ground truth; and
* ``tests/integration/test_golden_figures.py`` re-runs every case in
  both fast-path and slow-path modes and asserts exact equality against
  the committed JSON.

Determinism: every case pins its seed through the experiments' default
seed (42; fig06 uses its historical 7) and runs serially in-process, so
the payloads are bit-stable across runs and platforms.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments import (
    chaos,
    fig06_packet_size_cdf,
    fig07_goodput_latency,
    fig08_fixed_sizes,
    fig09_pcie,
    fig10_multi_server,
    fig11_multi_server_latency,
    fig12_explicit_drops,
    fig13_recirculation,
    fig14_memory_sweep,
    fig15_nf_cycles,
    fig16_small_packets,
    table1_resources,
)
from repro.experiments.runner import ExperimentRunner


def _runner(time_scale: float) -> ExperimentRunner:
    return ExperimentRunner(time_scale=time_scale)


GOLDEN_CASES: Dict[str, Callable[[], object]] = {
    "fig06": lambda: fig06_packet_size_cdf.run(sample_count=4_000),
    "fig07": lambda: fig07_goodput_latency.run(
        rates_gbps=(6.0, 10.5), runner=_runner(0.1)
    ),
    "fig08": lambda: fig08_fixed_sizes.run(
        sizes=(256, 1024), chain_names=("fw_nat",), runner=_runner(0.05)
    ),
    "fig09": lambda: fig09_pcie.run(sizes=(512, 1472), runner=_runner(0.05)),
    "fig10": lambda: fig10_multi_server.run(server_count=2, runner=_runner(0.1)),
    "fig11": lambda: fig11_multi_server_latency.run(
        server_count=2, runner=_runner(0.1)
    ),
    "fig12": lambda: fig12_explicit_drops.run(
        drop_fractions=(0.1,), policies=((1, False), (1, True)), runner=_runner(0.1)
    ),
    "fig13": lambda: fig13_recirculation.run(rates_gbps=(10.5,), runner=_runner(0.1)),
    "fig14": lambda: fig14_memory_sweep.run(
        sram_fractions=(0.10, 0.26),
        runner=_runner(0.05),
        rate_bounds_gbps=(10.0, 26.0),
        tolerance_gbps=8.0,
        include_baseline=False,
    ),
    "fig15": lambda: fig15_nf_cycles.run(
        sizes=(512,), nf_kinds=("light", "heavy"), runner=_runner(0.05)
    ),
    "fig16": lambda: fig16_small_packets.run(
        rates_gbps=(20.0, 36.0), runner=_runner(0.05)
    ),
    "table1": table1_resources.run,
    # The canonical fault scenario: chaos profiles must reproduce
    # bit-identically across the fast and reference paths (mid-run cache
    # invalidation, Maglev rebuilds and parking-slot drains included).
    "chaos": lambda: chaos.run(
        profiles=(None, "link-flap", "chaos-mix"), runner=_runner(0.1)
    ),
}
