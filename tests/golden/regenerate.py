#!/usr/bin/env python3
"""Regenerate the committed golden-figure tables.

Runs every case from ``cases.py`` on the **slow (reference) simulation
path** — the reference semantics are the ground truth the fast path
must reproduce — and writes ``<name>.json`` next to this script.

Usage::

    PYTHONPATH=src python tests/golden/regenerate.py             # all cases
    PYTHONPATH=src python tests/golden/regenerate.py fig07 fig14 # a subset

Regenerate only when a deliberate behaviour change invalidates the
tables, and say so in the commit message; see README.md in this
directory for the workflow.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent


def _load_cases():
    spec = importlib.util.spec_from_file_location("golden_cases", GOLDEN_DIR / "cases.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.GOLDEN_CASES


def main(argv=None) -> int:
    from repro.experiments.runner import default_fast_path

    cases = _load_cases()
    names = (argv if argv is not None else sys.argv[1:]) or sorted(cases)
    unknown = [name for name in names if name not in cases]
    if unknown:
        print(f"unknown golden cases: {unknown}; known: {sorted(cases)}", file=sys.stderr)
        return 2
    for name in names:
        with default_fast_path(False):
            payload = cases[name]()
        path = GOLDEN_DIR / f"{name}.json"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
