"""Unit tests for the control plane: controller, adaptive policy, deployment specs."""

import pytest

from repro.controlplane.manager import AdaptiveEvictionPolicy, PayloadParkController
from repro.controlplane.rules import DeploymentSpec, build_chain
from repro.core.config import NfServerBinding, PayloadParkConfig
from repro.core.program import PayloadParkProgram
from repro.nf.firewall import Firewall
from repro.nf.loadbalancer import MaglevLoadBalancer
from repro.nf.nat import Nat
from repro.packet.packet import Packet


def _program(**kwargs):
    binding = NfServerBinding(name="srv0", ingress_ports=(0, 1), nf_port=2, default_egress_port=0)
    return PayloadParkProgram(PayloadParkConfig(**kwargs), bindings=[binding])


class TestController:
    def test_counters_and_occupancy_reflect_dataplane(self):
        program = _program()
        controller = PayloadParkController(program)
        program.process(Packet.udp(total_size=512), ingress_port=0)
        assert controller.counters()["splits"] == 1
        assert controller.occupancy()["srv0"] > 0
        assert controller.memory_report()["srv0"] > 0
        assert controller.health() == {"srv0": True}

    def test_set_expiry_threshold_changes_future_splits(self):
        program = _program(table_entries=1, expiry_threshold=1)
        controller = PayloadParkController(program)
        controller.set_expiry_threshold(5)
        assert controller.expiry_threshold == 5
        first, second = Packet.udp(total_size=512), Packet.udp(total_size=512)
        program.process(first, ingress_port=0)
        program.process(second, ingress_port=0)
        # With the conservative threshold the wrap-around no longer evicts.
        assert program.counters_for().evictions == 0
        assert program.counters_for().split_disabled_table_occupied == 1

    def test_set_expiry_threshold_validates(self):
        controller = PayloadParkController(_program())
        with pytest.raises(ValueError):
            controller.set_expiry_threshold(0)

    def test_reset_clears_dataplane_state(self):
        program = _program()
        controller = PayloadParkController(program)
        program.process(Packet.udp(total_size=512), ingress_port=0)
        controller.reset()
        assert controller.counters()["splits"] == 0
        assert controller.occupancy()["srv0"] == 0

    def test_install_l2_route(self):
        program = _program()
        controller = PayloadParkController(program)
        controller.install_l2_route("02:00:00:00:00:09", 1)
        packet = Packet.udp(total_size=128, dst_mac="02:00:00:00:00:09")
        ctx = program.process(packet, ingress_port=2)
        assert ctx.egress_port == 1


class TestAdaptiveEvictionPolicy:
    def test_starts_aggressive(self):
        controller = PayloadParkController(_program(expiry_threshold=5))
        AdaptiveEvictionPolicy(controller, aggressive_threshold=1, conservative_threshold=10)
        assert controller.expiry_threshold == 1

    def test_backs_off_on_premature_evictions(self):
        controller = PayloadParkController(_program())
        policy = AdaptiveEvictionPolicy(controller, aggressive_threshold=1)
        # Simulate the dataplane reporting new premature evictions.
        controller.program.counters_for("srv0").premature_evictions = 4
        assert policy.observe() == 2
        controller.program.counters_for("srv0").premature_evictions = 8
        assert policy.observe() == 3

    def test_recovers_after_clean_intervals(self):
        controller = PayloadParkController(_program())
        policy = AdaptiveEvictionPolicy(
            controller, aggressive_threshold=1, recovery_intervals=2
        )
        controller.program.counters_for("srv0").premature_evictions = 2
        assert policy.observe() == 2
        # Two clean intervals bring the threshold back down.
        assert policy.observe() == 2
        assert policy.observe() == 1

    def test_threshold_stays_within_bounds(self):
        controller = PayloadParkController(_program())
        policy = AdaptiveEvictionPolicy(
            controller, aggressive_threshold=1, conservative_threshold=3
        )
        for step in range(10):
            controller.program.counters_for("srv0").premature_evictions = (step + 1) * 5
            policy.observe()
        assert controller.expiry_threshold == 3

    def test_invalid_bounds_rejected(self):
        controller = PayloadParkController(_program())
        with pytest.raises(ValueError):
            AdaptiveEvictionPolicy(controller, aggressive_threshold=5, conservative_threshold=2)


class TestDeploymentSpec:
    def test_builds_paper_chain(self):
        spec = DeploymentSpec(
            name="fw-nat-lb",
            chain=[
                {"type": "firewall", "rule_count": 20},
                {"type": "nat", "external_ip": "198.51.100.1"},
                {"type": "loadbalancer", "backends": {"web-1": "10.100.0.1", "web-2": "10.100.0.2"}},
            ],
        )
        chain = spec.build()
        assert len(chain) == 3
        assert isinstance(chain.nfs[0], Firewall)
        assert isinstance(chain.nfs[1], Nat)
        assert isinstance(chain.nfs[2], MaglevLoadBalancer)

    def test_blacklist_rules_installed(self):
        chain = build_chain([{"type": "firewall", "blacklist": ["192.168.0.0/16"]}])
        packet = Packet.udp(src_ip="192.168.1.1", total_size=128)
        assert not chain.process(packet).forwarded

    def test_synthetic_and_macswap(self):
        chain = build_chain([{"type": "macswap"}, {"type": "synthetic", "cycles": 250}])
        assert len(chain) == 2

    def test_loadbalancer_backend_count_shorthand(self):
        chain = build_chain([{"type": "loadbalancer", "backends": 4}])
        assert isinstance(chain.nfs[0], MaglevLoadBalancer)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            build_chain([{"type": "dpi"}])

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            build_chain([])
