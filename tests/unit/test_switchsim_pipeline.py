"""Unit tests for MATs, stages, pipelines, pipes and the ASIC."""

import pytest

from repro.packet.packet import Packet
from repro.switchsim.asic import AsicConfig, TofinoAsic
from repro.switchsim.context import PipelinePacket
from repro.switchsim.mat import MatchActionTable
from repro.switchsim.pipe import Pipe
from repro.switchsim.pipeline import Pipeline


def _ctx(port=0):
    return PipelinePacket(packet=Packet.udp(total_size=128), ingress_port=port)


class TestMatchActionTable:
    def test_unconditional_table_always_fires(self):
        hits = []
        table = MatchActionTable("t", action=lambda ctx: hits.append(ctx.ingress_port))
        assert table.apply(_ctx(3))
        assert hits == [3]
        assert table.hit_count == 1

    def test_match_predicate_gates_action(self):
        table = MatchActionTable(
            "t", match=lambda ctx: ctx.ingress_port == 1, action=lambda ctx: ctx.forward_to(9)
        )
        ctx = _ctx(0)
        assert not table.apply(ctx)
        assert ctx.egress_port is None
        assert table.miss_count == 1

    def test_dropped_packet_skips_table(self):
        table = MatchActionTable("t", action=lambda ctx: ctx.forward_to(1))
        ctx = _ctx()
        ctx.drop("test")
        assert not table.apply(ctx)

    def test_reset_counters(self):
        table = MatchActionTable("t", action=lambda ctx: None)
        table.apply(_ctx())
        table.reset_counters()
        assert table.hit_count == 0


class TestPipeline:
    def test_stage_count_fixed(self):
        pipeline = Pipeline(stage_count=3)
        with pytest.raises(IndexError):
            pipeline.stage(3)

    def test_rejects_zero_stages(self):
        with pytest.raises(ValueError):
            Pipeline(stage_count=0)

    def test_stages_execute_in_order(self):
        pipeline = Pipeline(stage_count=3)
        order = []
        for index in range(3):
            pipeline.stage(index).add_table(
                MatchActionTable(f"t{index}", action=lambda ctx, i=index: order.append(i))
            )
        pipeline.process(_ctx())
        assert order == [0, 1, 2]

    def test_drop_stops_later_stages(self):
        pipeline = Pipeline(stage_count=2)
        pipeline.stage(0).add_table(MatchActionTable("drop", action=lambda ctx: ctx.drop("x")))
        seen = []
        pipeline.stage(1).add_table(MatchActionTable("later", action=lambda ctx: seen.append(1)))
        pipeline.process(_ctx())
        assert seen == []

    def test_sram_totals(self):
        pipeline = Pipeline(stage_count=2)
        pipeline.stage(0).add_register_array("a", size=8, width_bits=32)
        assert pipeline.sram_bytes_used() == 32
        assert pipeline.sram_bytes_capacity() > pipeline.sram_bytes_used()


class TestPipeRecirculation:
    def test_recirculation_limit_enforced(self):
        pipe = Pipe(index=0, stage_count=2, recirculation_limit=1)
        pipe.pipeline.stage(0).add_table(
            MatchActionTable("loop", action=lambda ctx: ctx.request_recirculation())
        )
        ctx = pipe.process(Packet.udp(total_size=100), ingress_port=0)
        assert ctx.recirculations == 1

    def test_recirculation_latency_reported(self):
        pipe = Pipe(index=0, stage_count=2, recirculation_limit=2)
        ctx = _ctx()
        ctx.recirculations = 2
        assert pipe.recirculation_latency_ns(ctx) == 2 * Pipe.RECIRCULATION_LATENCY_NS

    def test_parser_hook_runs_on_each_pass(self):
        pipe = Pipe(index=0, stage_count=1, recirculation_limit=1)
        passes = []
        pipe.parser.hook = lambda ctx: passes.append(ctx.recirculations)
        pipe.pipeline.stage(0).add_table(
            MatchActionTable(
                "once",
                match=lambda ctx: ctx.recirculations == 0,
                action=lambda ctx: ctx.request_recirculation(),
            )
        )
        pipe.process(Packet.udp(total_size=100), ingress_port=0)
        assert passes == [0, 1]


class TestTofinoAsic:
    def test_port_to_pipe_mapping(self):
        asic = TofinoAsic()
        assert asic.pipe_for_port(0) is asic.pipes[0]
        assert asic.pipe_for_port(17) is asic.pipes[1]
        assert asic.same_pipe(0, 15)
        assert not asic.same_pipe(15, 16)

    def test_ports_of_pipe(self):
        asic = TofinoAsic()
        assert asic.ports_of_pipe(2) == list(range(32, 48))

    def test_out_of_range_port_rejected(self):
        asic = TofinoAsic()
        with pytest.raises(ValueError):
            asic.pipe_for_port(64)
        with pytest.raises(ValueError):
            asic.ports_of_pipe(4)

    def test_process_counts_drops(self):
        config = AsicConfig(pipe_count=1, ports_per_pipe=4, stages_per_pipe=2)
        asic = TofinoAsic(config)
        asic.pipes[0].pipeline.stage(0).add_table(
            MatchActionTable("drop-all", action=lambda ctx: ctx.drop("policy"))
        )
        asic.process(Packet.udp(total_size=100), ingress_port=1)
        assert asic.dropped_packets == 1
        assert asic.drop_reasons == {"policy": 1}
        asic.reset_counters()
        assert asic.processed_packets == 0
