"""Unit tests for Ethernet headers and MAC addresses."""

import pytest

from repro.packet.ethernet import (
    BROADCAST_MAC,
    ETHERTYPE_IPV4,
    EthernetHeader,
    MacAddress,
)


class TestMacAddress:
    def test_from_string_round_trip(self):
        mac = MacAddress.from_string("02:00:00:00:00:2a")
        assert str(mac) == "02:00:00:00:00:2a"
        assert mac.value == 0x02000000002A

    def test_from_bytes_round_trip(self):
        raw = bytes.fromhex("0200deadbeef")
        assert MacAddress.from_bytes(raw).to_bytes() == raw

    def test_rejects_malformed_strings(self):
        with pytest.raises(ValueError):
            MacAddress.from_string("02:00:00:00:00")
        with pytest.raises(ValueError):
            MacAddress.from_string("zz:00:00:00:00:01")

    def test_rejects_out_of_range_value(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)

    def test_broadcast_and_multicast_flags(self):
        assert BROADCAST_MAC.is_broadcast
        assert BROADCAST_MAC.is_multicast
        assert MacAddress.from_string("01:00:5e:00:00:01").is_multicast
        assert not MacAddress.from_string("02:00:00:00:00:01").is_multicast


class TestEthernetHeader:
    def _header(self):
        return EthernetHeader(
            dst=MacAddress.from_string("02:00:00:00:00:02"),
            src=MacAddress.from_string("02:00:00:00:00:01"),
            ethertype=ETHERTYPE_IPV4,
        )

    def test_serialization_round_trip(self):
        header = self._header()
        parsed = EthernetHeader.from_bytes(header.to_bytes())
        assert parsed == header

    def test_wire_length_is_14_bytes(self):
        assert len(self._header().to_bytes()) == 14

    def test_from_bytes_rejects_short_input(self):
        with pytest.raises(ValueError):
            EthernetHeader.from_bytes(b"\x00" * 13)

    def test_swap_addresses(self):
        header = self._header()
        src, dst = header.src, header.dst
        header.swap_addresses()
        assert header.src == dst and header.dst == src

    def test_copy_is_independent(self):
        header = self._header()
        clone = header.copy()
        clone.swap_addresses()
        assert clone.src != header.src
