"""Unit tests for time-varying offered-load schedules."""

import math

import pytest

from repro.errors import WorkloadSpecError
from repro.workloads.schedule import RatePhase, TraceSchedule


class TestRatePhase:
    def test_flat_phase_rate(self):
        phase = RatePhase(1_000, 4.0, 4.0)
        assert phase.rate_at(0) == 4.0
        assert phase.rate_at(999) == 4.0
        assert phase.mean_gbps() == 4.0

    def test_ramp_interpolates_linearly(self):
        phase = RatePhase(1_000, 2.0, 12.0)
        assert phase.rate_at(0) == pytest.approx(2.0)
        assert phase.rate_at(500) == pytest.approx(7.0)
        assert phase.rate_at(1_000) == pytest.approx(12.0)

    def test_validation(self):
        with pytest.raises(WorkloadSpecError):
            RatePhase(0, 1.0, 1.0)
        with pytest.raises(WorkloadSpecError):
            RatePhase(10, -1.0, 1.0)
        with pytest.raises(WorkloadSpecError):
            RatePhase(10, float("inf"), 1.0)


class TestTraceSchedule:
    def test_needs_phases_and_some_traffic(self):
        with pytest.raises(WorkloadSpecError):
            TraceSchedule([])
        with pytest.raises(WorkloadSpecError):
            TraceSchedule([RatePhase(100, 0.0, 0.0)])

    def test_constant(self):
        schedule = TraceSchedule.constant(8.0)
        assert schedule.rate_at(0) == 8.0
        assert schedule.rate_at(10**12) == 8.0
        assert schedule.mean_gbps() == 8.0

    def test_steps_and_transitions(self):
        schedule = TraceSchedule.steps([(1_000, 2.0), (1_000, 0.0), (1_000, 6.0)])
        assert schedule.rate_at(500) == 2.0
        assert schedule.rate_at(1_500) == 0.0
        assert schedule.rate_at(2_500) == 6.0
        assert schedule.next_transition(0) == 1_000
        assert schedule.next_transition(1_000) == 2_000
        # Past the end of a non-repeating schedule the final rate holds.
        assert schedule.rate_at(10_000) == 6.0
        assert schedule.next_transition(10_000) is None

    def test_next_active_skips_silent_phase(self):
        schedule = TraceSchedule.steps([(1_000, 2.0), (1_000, 0.0), (1_000, 6.0)])
        assert schedule.next_active(0) == 0
        assert schedule.next_active(1_200) == 2_000

    def test_next_active_on_zero_start_ramp(self):
        schedule = TraceSchedule.ramp(0.0, 10.0, 1_000)
        active = schedule.next_active(0)
        assert active is not None
        assert schedule.rate_at(active) > 0

    def test_next_active_none_when_silent_forever(self):
        schedule = TraceSchedule.steps([(1_000, 4.0), (1_000, 0.0)])
        assert schedule.next_active(1_500) is None

    def test_repeat_wraps_around(self):
        schedule = TraceSchedule.steps([(1_000, 2.0), (1_000, 8.0)], repeat=True)
        assert schedule.rate_at(2_500) == 2.0
        assert schedule.rate_at(3_500) == 8.0
        assert schedule.next_transition(2_500) == 3_000

    def test_mean_and_scaling(self):
        schedule = TraceSchedule.steps([(1_000, 2.0), (3_000, 10.0)])
        assert schedule.mean_gbps() == pytest.approx(8.0)
        scaled = schedule.with_mean(4.0)
        assert scaled.mean_gbps() == pytest.approx(4.0)
        assert scaled.rate_at(0) == pytest.approx(1.0)
        assert scaled.peak_gbps() == pytest.approx(5.0)
        with pytest.raises(WorkloadSpecError):
            schedule.scaled(0)

    def test_ramp_rate_holds_after_end(self):
        schedule = TraceSchedule.ramp(2.0, 12.0, 4_000)
        assert schedule.rate_at(2_000) == pytest.approx(7.0)
        assert schedule.rate_at(8_000) == pytest.approx(12.0)

    def test_diurnal_cycles_between_bounds(self):
        schedule = TraceSchedule.diurnal(3.0, 11.0, period_ns=8_000, segments=8)
        rates = [schedule.rate_at(t) for t in range(0, 16_000, 500)]
        assert min(rates) >= 3.0 - 1e-9
        assert max(rates) <= 11.0 + 1e-9
        assert schedule.rate_at(0) == pytest.approx(3.0)
        # Repeats: one full period later the profile is identical.
        assert schedule.rate_at(1_234) == pytest.approx(schedule.rate_at(9_234))
        assert schedule.mean_gbps() == pytest.approx(7.0, rel=0.05)

    def test_describe_mentions_every_phase(self):
        schedule = TraceSchedule.steps([(1_000, 2.0), (1_000, 8.0)], repeat=True)
        lines = schedule.describe()
        assert len(lines) == 3
        assert "(repeats)" in lines[-1]


class TestGapForBits:
    """Integral pacing: ``gap_for_bits`` solves ``∫ rate dt == bits``.

    These pin the fix for the ramp-from-zero starvation bug: the old
    pacer quoted the *instantaneous* rate across the whole gap, which
    froze a generator at the foot of a ramp and slept blindly across
    phase boundaries.
    """

    def test_flat_phase_matches_instantaneous_rate(self):
        schedule = TraceSchedule.constant(8.0)
        assert schedule.gap_for_bits(0, 8_000) == pytest.approx(1_000.0)

    def test_zero_or_negative_bits_cost_no_time(self):
        schedule = TraceSchedule.constant(8.0)
        assert schedule.gap_for_bits(0, 0) == 0.0
        assert schedule.gap_for_bits(123.5, -7) == 0.0

    def test_ramp_from_zero_does_not_starve(self):
        # rate_at(0) == 0, so instantaneous pacing would quote an
        # (effectively) infinite gap; the integral gap is finite.
        schedule = TraceSchedule.ramp(0.0, 8.0, 100_000)
        slope = 8.0 / 100_000
        bits = 8_192.0
        gap = schedule.gap_for_bits(0, bits)
        assert gap == pytest.approx(math.sqrt(2.0 * bits / slope))
        # The area under the ramp over the gap equals the request.
        assert slope * gap * gap / 2.0 == pytest.approx(bits)

    def test_crosses_phase_boundary_instead_of_sleeping_blind(self):
        schedule = TraceSchedule.steps([(1_000, 8.0), (1_000, 2.0)])
        # 8k bits drain phase 0 exactly; 2k more take 1000 ns at 2 Gbps.
        assert schedule.gap_for_bits(0, 10_000) == pytest.approx(2_000.0)

    def test_mid_phase_start_offsets_correctly(self):
        schedule = TraceSchedule.steps([(50_000, 8.0), (50_000, 2.0)])
        assert schedule.gap_for_bits(25_000, 100_000) == pytest.approx(12_500.0)

    def test_final_rate_holds_past_the_end(self):
        schedule = TraceSchedule.ramp(2.0, 12.0, 4_000)
        assert schedule.gap_for_bits(8_000, 12_000) == pytest.approx(1_000.0)

    def test_none_when_silent_forever(self):
        schedule = TraceSchedule.steps([(1_000, 4.0), (1_000, 0.0)])
        # Only 4k bits are ever offered after t=0; asking for 5k never
        # completes, and asking from inside the final silence never starts.
        assert schedule.gap_for_bits(0, 5_000) is None
        assert schedule.gap_for_bits(1_500, 100) is None

    def test_repeat_wraps_through_silence(self):
        schedule = TraceSchedule.steps(
            [(100_000, 4.0), (100_000, 0.0)], repeat=True
        )
        assert schedule.gap_for_bits(0, 400_000) == pytest.approx(100_000.0)
        # A second active phase's worth: wait out the silent half first.
        assert schedule.gap_for_bits(0, 800_000) == pytest.approx(300_000.0)

    def test_repeat_fast_forwards_many_cycles(self):
        schedule = TraceSchedule.steps([(1_000, 4.0), (1_000, 0.0)], repeat=True)
        # 1000 full cycles (4k bits each) plus half of the next active
        # phase; the cycle fast-forward keeps this O(phases), not O(cycles).
        gap = schedule.gap_for_bits(0, 4_000 * 1000 + 2_000)
        assert gap == pytest.approx(1000 * 2_000 + 500.0)
