"""Unit tests for time-varying offered-load schedules."""

import pytest

from repro.errors import WorkloadSpecError
from repro.workloads.schedule import RatePhase, TraceSchedule


class TestRatePhase:
    def test_flat_phase_rate(self):
        phase = RatePhase(1_000, 4.0, 4.0)
        assert phase.rate_at(0) == 4.0
        assert phase.rate_at(999) == 4.0
        assert phase.mean_gbps() == 4.0

    def test_ramp_interpolates_linearly(self):
        phase = RatePhase(1_000, 2.0, 12.0)
        assert phase.rate_at(0) == pytest.approx(2.0)
        assert phase.rate_at(500) == pytest.approx(7.0)
        assert phase.rate_at(1_000) == pytest.approx(12.0)

    def test_validation(self):
        with pytest.raises(WorkloadSpecError):
            RatePhase(0, 1.0, 1.0)
        with pytest.raises(WorkloadSpecError):
            RatePhase(10, -1.0, 1.0)
        with pytest.raises(WorkloadSpecError):
            RatePhase(10, float("inf"), 1.0)


class TestTraceSchedule:
    def test_needs_phases_and_some_traffic(self):
        with pytest.raises(WorkloadSpecError):
            TraceSchedule([])
        with pytest.raises(WorkloadSpecError):
            TraceSchedule([RatePhase(100, 0.0, 0.0)])

    def test_constant(self):
        schedule = TraceSchedule.constant(8.0)
        assert schedule.rate_at(0) == 8.0
        assert schedule.rate_at(10**12) == 8.0
        assert schedule.mean_gbps() == 8.0

    def test_steps_and_transitions(self):
        schedule = TraceSchedule.steps([(1_000, 2.0), (1_000, 0.0), (1_000, 6.0)])
        assert schedule.rate_at(500) == 2.0
        assert schedule.rate_at(1_500) == 0.0
        assert schedule.rate_at(2_500) == 6.0
        assert schedule.next_transition(0) == 1_000
        assert schedule.next_transition(1_000) == 2_000
        # Past the end of a non-repeating schedule the final rate holds.
        assert schedule.rate_at(10_000) == 6.0
        assert schedule.next_transition(10_000) is None

    def test_next_active_skips_silent_phase(self):
        schedule = TraceSchedule.steps([(1_000, 2.0), (1_000, 0.0), (1_000, 6.0)])
        assert schedule.next_active(0) == 0
        assert schedule.next_active(1_200) == 2_000

    def test_next_active_on_zero_start_ramp(self):
        schedule = TraceSchedule.ramp(0.0, 10.0, 1_000)
        active = schedule.next_active(0)
        assert active is not None
        assert schedule.rate_at(active) > 0

    def test_next_active_none_when_silent_forever(self):
        schedule = TraceSchedule.steps([(1_000, 4.0), (1_000, 0.0)])
        assert schedule.next_active(1_500) is None

    def test_repeat_wraps_around(self):
        schedule = TraceSchedule.steps([(1_000, 2.0), (1_000, 8.0)], repeat=True)
        assert schedule.rate_at(2_500) == 2.0
        assert schedule.rate_at(3_500) == 8.0
        assert schedule.next_transition(2_500) == 3_000

    def test_mean_and_scaling(self):
        schedule = TraceSchedule.steps([(1_000, 2.0), (3_000, 10.0)])
        assert schedule.mean_gbps() == pytest.approx(8.0)
        scaled = schedule.with_mean(4.0)
        assert scaled.mean_gbps() == pytest.approx(4.0)
        assert scaled.rate_at(0) == pytest.approx(1.0)
        assert scaled.peak_gbps() == pytest.approx(5.0)
        with pytest.raises(WorkloadSpecError):
            schedule.scaled(0)

    def test_ramp_rate_holds_after_end(self):
        schedule = TraceSchedule.ramp(2.0, 12.0, 4_000)
        assert schedule.rate_at(2_000) == pytest.approx(7.0)
        assert schedule.rate_at(8_000) == pytest.approx(12.0)

    def test_diurnal_cycles_between_bounds(self):
        schedule = TraceSchedule.diurnal(3.0, 11.0, period_ns=8_000, segments=8)
        rates = [schedule.rate_at(t) for t in range(0, 16_000, 500)]
        assert min(rates) >= 3.0 - 1e-9
        assert max(rates) <= 11.0 + 1e-9
        assert schedule.rate_at(0) == pytest.approx(3.0)
        # Repeats: one full period later the profile is identical.
        assert schedule.rate_at(1_234) == pytest.approx(schedule.rate_at(9_234))
        assert schedule.mean_gbps() == pytest.approx(7.0, rel=0.05)

    def test_describe_mentions_every_phase(self):
        schedule = TraceSchedule.steps([(1_000, 2.0), (1_000, 8.0)], repeat=True)
        lines = schedule.describe()
        assert len(lines) == 3
        assert "(repeats)" in lines[-1]
