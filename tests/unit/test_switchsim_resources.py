"""Unit tests for resource budgets, register arrays and the PHV layout."""

import pytest

from repro.switchsim.context import PipelinePacket
from repro.switchsim.phv import PhvLayout, PhvOverflow
from repro.switchsim.registers import RegisterAccessError, RegisterArray
from repro.switchsim.resources import (
    ResourceBudget,
    ResourceExhausted,
    ResourceReport,
    StageResources,
)
from repro.packet.packet import Packet


def _ctx():
    return PipelinePacket(packet=Packet.udp(total_size=128), ingress_port=0)


class TestStageResources:
    def test_sram_allocation_and_percent(self):
        stage = StageResources(budget=ResourceBudget(sram_bytes=1000))
        stage.allocate_sram(250)
        assert stage.sram_percent == pytest.approx(25.0)

    def test_sram_exhaustion_raises(self):
        stage = StageResources(budget=ResourceBudget(sram_bytes=100))
        with pytest.raises(ResourceExhausted):
            stage.allocate_sram(101, what="too-big")

    def test_negative_allocation_rejected(self):
        stage = StageResources()
        with pytest.raises(ValueError):
            stage.allocate_sram(-1)

    def test_vliw_and_crossbar_accounting(self):
        stage = StageResources(budget=ResourceBudget(vliw_slots=4, exact_crossbar_bits=32))
        stage.allocate_vliw(2)
        stage.allocate_crossbar(16)
        assert stage.vliw_percent == pytest.approx(50.0)
        assert stage.exact_crossbar_percent == pytest.approx(50.0)
        with pytest.raises(ResourceExhausted):
            stage.allocate_vliw(3)

    def test_tcam_and_ternary_crossbar(self):
        stage = StageResources(budget=ResourceBudget(tcam_entries=10, ternary_crossbar_bits=8))
        stage.allocate_tcam(5)
        stage.allocate_crossbar(4, ternary=True)
        assert stage.tcam_percent == pytest.approx(50.0)
        assert stage.ternary_crossbar_percent == pytest.approx(50.0)


class TestResourceReport:
    def test_report_averages_used_stages(self):
        budget = ResourceBudget(sram_bytes=1000)
        stages = [StageResources(budget=budget) for _ in range(4)]
        stages[0].allocate_sram(500)
        stages[1].allocate_sram(300)
        report = ResourceReport.from_stages(stages, phv_bits_used=100, phv_bits_budget=400)
        assert report.sram_peak_percent == pytest.approx(50.0)
        assert report.sram_avg_percent == pytest.approx(40.0)
        assert report.phv_percent == pytest.approx(25.0)

    def test_report_rejects_empty_stage_list(self):
        with pytest.raises(ValueError):
            ResourceReport.from_stages([], phv_bits_used=0, phv_bits_budget=1)

    def test_table_rows_have_all_resources(self):
        stages = [StageResources() for _ in range(2)]
        report = ResourceReport.from_stages(stages, phv_bits_used=0, phv_bits_budget=100)
        names = {row["resource"] for row in report.as_table_rows()}
        assert "SRAM (avg per stage)" in names
        assert "Packet Header Vector" in names


class TestRegisterArray:
    def test_read_write_via_context(self):
        array = RegisterArray("reg", size=4, width_bits=16)
        ctx = _ctx()
        array.write(ctx, 2, 99)
        assert array.peek(2) == 99
        assert array.read(_ctx(), 2) == 99

    def test_single_access_per_pass_enforced(self):
        array = RegisterArray("reg", size=4, width_bits=16)
        ctx = _ctx()
        array.read(ctx, 0)
        with pytest.raises(RegisterAccessError):
            array.write(ctx, 1, 5)

    def test_access_guard_resets_between_passes(self):
        array = RegisterArray("reg", size=4, width_bits=16)
        ctx = _ctx()
        array.read(ctx, 0)
        ctx.reset_pass_state()
        array.read(ctx, 0)  # no error

    def test_read_modify_write_returns_new_value(self):
        array = RegisterArray("counter", size=1, width_bits=16, initial=7)
        assert array.read_modify_write(_ctx(), 0, lambda v: v + 1) == 8
        assert array.peek(0) == 8

    def test_exchange_returns_old_value(self):
        array = RegisterArray("blocks", size=2, width_bits=128, initial=b"")
        ctx = _ctx()
        array.poke(0, b"hello")
        assert array.exchange(ctx, 0, b"") == b"hello"
        assert array.peek(0) == b""

    def test_out_of_range_index_rejected(self):
        array = RegisterArray("reg", size=2, width_bits=8)
        with pytest.raises(IndexError):
            array.peek(2)

    def test_sram_accounting_charges_stage(self):
        stage = StageResources(budget=ResourceBudget(sram_bytes=64))
        RegisterArray("small", size=4, width_bits=32, stage_resources=stage)
        assert stage.sram_bytes_used == 16
        with pytest.raises(ResourceExhausted):
            RegisterArray("big", size=100, width_bits=32, stage_resources=stage)

    def test_occupancy_and_clear(self):
        array = RegisterArray("reg", size=4, width_bits=8, initial=0)
        array.poke(1, 5)
        array.poke(3, 9)
        assert array.occupancy() == 2
        array.clear()
        assert array.occupancy() == 0

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            RegisterArray("bad", size=0, width_bits=8)
        with pytest.raises(ValueError):
            RegisterArray("bad", size=1, width_bits=0)


class TestPhvLayout:
    def test_declare_and_percent(self):
        phv = PhvLayout(capacity_bits=100)
        phv.declare("ethernet", 40)
        assert phv.used_bits == 40
        assert phv.percent_used == pytest.approx(40.0)

    def test_redeclare_same_width_is_noop(self):
        phv = PhvLayout(capacity_bits=100)
        phv.declare("field", 10)
        phv.declare("field", 10)
        assert phv.used_bits == 10

    def test_redeclare_different_width_rejected(self):
        phv = PhvLayout(capacity_bits=100)
        phv.declare("field", 10)
        with pytest.raises(ValueError):
            phv.declare("field", 20)

    def test_overflow_raises(self):
        phv = PhvLayout(capacity_bits=32)
        with pytest.raises(PhvOverflow):
            phv.declare("huge", 64)
