"""Unit tests for the switch, NF-server and traffic-generator nodes."""

import pytest

from repro.core.config import NfServerBinding, PayloadParkConfig
from repro.core.program import BaselineProgram, PayloadParkProgram
from repro.netsim.eventloop import EventLoop
from repro.netsim.link import Link
from repro.netsim.nic import NIC_10GE
from repro.netsim.node import Node
from repro.netsim.server_node import NfServerNode
from repro.netsim.switch_node import SwitchNode
from repro.netsim.topology import SingleServerTopology
from repro.netsim.trafficgen_node import TrafficGenNode
from repro.nf.chain import NfChain
from repro.nf.firewall import Firewall, FirewallRule
from repro.nf.macswap import MacSwapper
from repro.nf.server import NfServerConfig, NfServerModel
from repro.packet.packet import Packet
from repro.traffic.pktgen import PktGenConfig
from repro.traffic.workload import Workload


class _Collector(Node):
    def __init__(self, env, name="collector"):
        super().__init__(env, name)
        self.received = []

    def handle_packet(self, packet, port):
        self.received.append(packet)


def _binding():
    return NfServerBinding(name="srv0", ingress_ports=(0, 1), nf_port=2, default_egress_port=0)


class TestSwitchNode:
    def _wired_switch(self, program):
        env = EventLoop()
        switch = SwitchNode(env, program)
        gen = _Collector(env, "gen")
        server = _Collector(env, "server")
        Link(env, gen, 0, switch, 0, bandwidth_gbps=100.0)
        Link(env, gen, 1, switch, 1, bandwidth_gbps=100.0)
        Link(env, server, 0, switch, 2, bandwidth_gbps=100.0)
        return env, switch, gen, server

    def test_forwards_after_base_latency(self):
        env, switch, gen, server = self._wired_switch(BaselineProgram([_binding()]))
        switch.handle_packet(Packet.udp(total_size=200), port=0)
        env.run_until(10_000_000)
        assert len(server.received) == 1
        assert switch.packets_out == 1

    def test_counts_useful_bytes_toward_nf(self):
        program = PayloadParkProgram(PayloadParkConfig(), bindings=[_binding()])
        env, switch, gen, server = self._wired_switch(program)
        switch.handle_packet(Packet.udp(total_size=500), port=0)
        env.run_until(10_000_000)
        assert switch.packets_to_nf == 1
        assert switch.useful_bytes_to_nf == 42

    def test_counts_dataplane_drops(self):
        program = PayloadParkProgram(PayloadParkConfig(), bindings=[_binding()])
        env, switch, gen, server = self._wired_switch(program)
        packet = Packet.udp(total_size=500)
        switch.handle_packet(packet, port=0)
        packet.pp.clk ^= 1  # corrupt the tag
        switch.handle_packet(packet, port=2)
        assert switch.packets_dropped == 1
        assert "payloadpark-tag-corrupt" in switch.drop_reasons

    def test_stats_snapshot_keys(self):
        env, switch, gen, server = self._wired_switch(BaselineProgram([_binding()]))
        stats = switch.stats()
        assert {"packets_in", "packets_out", "packets_dropped"} <= set(stats)


class TestNfServerNode:
    def _server(self, chain=None, jitter=0.0, explicit_drop=False):
        env = EventLoop()
        chain = chain or NfChain([MacSwapper()])
        model = NfServerModel(
            chain,
            NfServerConfig(service_jitter=jitter, explicit_drop=explicit_drop),
        )
        server = NfServerNode(env, model, nic_spec=NIC_10GE)
        sink = _Collector(env, "switch-side")
        Link(env, server, 0, sink, 0, bandwidth_gbps=100.0)
        return env, server, sink

    def test_packet_round_trips_through_chain(self):
        env, server, sink = self._server()
        packet = Packet.udp(total_size=300)
        src_before = packet.eth.src
        server.handle_packet(packet, port=0)
        env.run_until(1_000_000)
        assert len(sink.received) == 1
        assert sink.received[0].eth.dst == src_before  # MAC swapped
        assert server.processed_packets == 1
        assert server.forwarded_packets == 1

    def test_pcie_bytes_accounted_both_directions(self):
        env, server, sink = self._server()
        server.handle_packet(Packet.udp(total_size=300), port=0)
        env.run_until(1_000_000)
        assert server.pcie.rx_bytes > 300
        assert server.pcie.tx_bytes > 300

    def test_chain_drop_without_explicit_drop_vanishes(self):
        chain = NfChain([Firewall(rules=[FirewallRule.blacklist("10.1.0.0/16")])])
        env, server, sink = self._server(chain=chain)
        server.handle_packet(Packet.udp(src_ip="10.1.0.5", total_size=300), port=0)
        env.run_until(1_000_000)
        assert server.chain_dropped_packets == 1
        assert sink.received == []

    def test_chain_drop_with_explicit_drop_sends_notification(self):
        from repro.core.header import OP_EXPLICIT_DROP, PayloadParkHeader

        chain = NfChain([Firewall(rules=[FirewallRule.blacklist("10.1.0.0/16")])])
        env, server, sink = self._server(chain=chain, explicit_drop=True)
        packet = Packet.udp(src_ip="10.1.0.5", total_size=300)
        packet.pp = PayloadParkHeader(enb=1, tbl_idx=1, clk=1).seal()
        packet.park_leading_payload(160)
        server.handle_packet(packet, port=0)
        env.run_until(1_000_000)
        assert server.explicit_drop_notifications == 1
        assert len(sink.received) == 1
        assert sink.received[0].pp.op == OP_EXPLICIT_DROP
        assert sink.received[0].payload_length == 0

    def test_buffer_overflow_drops(self):
        env, server, sink = self._server()
        server._buffer_capacity = 2
        for _ in range(5):
            server.handle_packet(Packet.udp(total_size=300), port=0)
        assert server.overflow_drops == 3

    def test_queue_occupancy_drains(self):
        env, server, sink = self._server()
        for _ in range(3):
            server.handle_packet(Packet.udp(total_size=300), port=0)
        assert server.queue_occupancy == 3
        env.run_until(10_000_000)
        assert server.queue_occupancy == 0


class TestTrafficGenNode:
    def _pktgen(self, rate_gbps=10.0, size=512):
        env = EventLoop()
        config = PktGenConfig(rate_gbps=rate_gbps, workload=Workload.fixed_size(size), seed=5)
        gen = TrafficGenNode(env, config, tx_ports=[0, 1])
        sink_a, sink_b = _Collector(env, "a"), _Collector(env, "b")
        Link(env, gen, 0, sink_a, 0, bandwidth_gbps=100.0)
        Link(env, gen, 1, sink_b, 0, bandwidth_gbps=100.0)
        return env, gen, sink_a, sink_b

    def test_offered_rate_close_to_configured(self):
        env, gen, sink_a, sink_b = self._pktgen(rate_gbps=8.0)
        gen.start(duration_ns=1_000_000)
        env.run_until(1_000_000)
        offered_gbps = gen.bytes_sent * 8 / 1_000_000
        assert offered_gbps == pytest.approx(8.0, rel=0.1)

    def test_traffic_striped_across_ports(self):
        env, gen, sink_a, sink_b = self._pktgen()
        gen.start(duration_ns=200_000)
        env.run_until(300_000)
        assert abs(len(sink_a.received) - len(sink_b.received)) <= 1

    def test_sink_records_latency(self):
        env, gen, sink_a, sink_b = self._pktgen()
        packet = Packet.udp(total_size=200)
        packet.meta["tx_ns"] = 0
        env.run_until(0)
        gen.handle_packet(packet, port=0)
        assert gen.packets_received == 1
        assert gen.latency.count == 1

    def test_stop_halts_generation(self):
        env, gen, sink_a, sink_b = self._pktgen()
        gen.start(duration_ns=10_000_000)
        env.run_until(50_000)
        sent_before = gen.packets_sent
        gen.stop()
        env.run_until(200_000)
        assert gen.packets_sent <= sent_before + gen.config.burst_size

    def test_requires_tx_ports(self):
        env = EventLoop()
        config = PktGenConfig(rate_gbps=1.0, workload=Workload.fixed_size(256))
        with pytest.raises(ValueError):
            TrafficGenNode(env, config, tx_ports=[])


class TestTopology:
    def test_single_server_topology_wires_everything(self):
        env = EventLoop()
        program = BaselineProgram([_binding()])
        model = NfServerModel(NfChain([MacSwapper()]), NfServerConfig(service_jitter=0.0))
        config = PktGenConfig(rate_gbps=5.0, workload=Workload.fixed_size(512))
        topology = SingleServerTopology(env, program, model, config, nic_spec=NIC_10GE)
        topology.start_traffic(duration_ns=100_000)
        topology.run_until(500_000)
        assert topology.pktgen.packets_sent > 0
        assert topology.server.processed_packets > 0
        assert topology.pktgen.packets_received > 0
        snapshot = topology.snapshot()
        assert "switch" in snapshot and "links.srv0" in snapshot

    def test_single_server_topology_rejects_multi_binding_program(self):
        env = EventLoop()
        bindings = [_binding(), NfServerBinding("b", (4, 5), 6, 4)]
        program = BaselineProgram(bindings)
        model = NfServerModel(NfChain([MacSwapper()]), NfServerConfig())
        config = PktGenConfig(rate_gbps=5.0, workload=Workload.fixed_size(512))
        with pytest.raises(ValueError):
            SingleServerTopology(env, program, model, config)
