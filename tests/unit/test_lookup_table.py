"""Unit tests for the lookup table and the packet tagger."""

import pytest

from repro.core.lookup_table import LookupTable, MetadataEntry
from repro.core.tagger import PacketTagger
from repro.packet.packet import Packet
from repro.switchsim.context import PipelinePacket
from repro.switchsim.pipeline import Pipeline


def _ctx():
    return PipelinePacket(packet=Packet.udp(total_size=512), ingress_port=0)


def _table(entries=8, parked=160, allow_second_pass=False, pipeline=None):
    pipeline = pipeline or Pipeline(stage_count=12)
    return LookupTable(
        name="t",
        pipeline=pipeline,
        entries=entries,
        parked_bytes=parked,
        allow_second_pass=allow_second_pass,
    )


class TestLayout:
    def test_single_pass_block_layout(self):
        table = _table(parked=160)
        assert len(table.block_slots) == 10
        assert all(slot.pass_number == 0 for slot in table.block_slots)
        assert {slot.stage_index for slot in table.block_slots} == set(range(2, 12))
        assert sum(slot.length for slot in table.block_slots) == 160

    def test_second_pass_layout_for_recirculation(self):
        table = _table(parked=384, allow_second_pass=True)
        assert table.uses_second_pass
        assert sum(slot.length for slot in table.block_slots) == 384
        second = [slot for slot in table.block_slots if slot.pass_number == 1]
        assert len(second) == 14

    def test_overflow_without_second_pass_rejected(self):
        with pytest.raises(ValueError):
            _table(parked=384, allow_second_pass=False)

    def test_entries_bounded_by_tag_width(self):
        with pytest.raises(ValueError):
            _table(entries=70_000)

    def test_sram_bytes_accounts_metadata_and_blocks(self):
        table = _table(entries=16, parked=160)
        # 16 entries * (4 metadata bytes + 160 payload bytes)
        assert table.sram_bytes() == 16 * 4 + 16 * 160


class TestProbeAndClaim:
    def test_claim_free_slot(self):
        table = _table()
        result = table.probe_and_claim(_ctx(), index=0, clk=5, max_exp=1)
        assert result.claimed and not result.evicted
        assert table.peek_metadata(0) == MetadataEntry(clk=5, exp=1)
        assert table.occupancy() == 1

    def test_occupied_slot_decrements_and_rejects(self):
        table = _table()
        table.probe_and_claim(_ctx(), index=0, clk=5, max_exp=3)
        result = table.probe_and_claim(_ctx(), index=0, clk=6, max_exp=3)
        assert not result.claimed
        assert table.peek_metadata(0).exp == 2
        assert table.peek_metadata(0).clk == 5

    def test_eviction_when_threshold_expires(self):
        table = _table()
        table.probe_and_claim(_ctx(), index=0, clk=5, max_exp=1)
        result = table.probe_and_claim(_ctx(), index=0, clk=9, max_exp=1)
        assert result.claimed and result.evicted
        assert table.peek_metadata(0).clk == 9

    def test_expiry_threshold_controls_probes_until_eviction(self):
        table = _table()
        table.probe_and_claim(_ctx(), index=0, clk=1, max_exp=3)
        outcomes = [table.probe_and_claim(_ctx(), index=0, clk=2 + i, max_exp=3) for i in range(3)]
        assert [result.claimed for result in outcomes] == [False, False, True]
        assert outcomes[-1].evicted


class TestValidateAndRelease:
    def test_valid_release_frees_slot(self):
        table = _table()
        table.probe_and_claim(_ctx(), index=3, clk=7, max_exp=1)
        result = table.validate_and_release(_ctx(), index=3, clk=7)
        assert result.valid
        assert table.occupancy() == 0

    def test_clock_mismatch_detected(self):
        table = _table()
        table.probe_and_claim(_ctx(), index=3, clk=7, max_exp=1)
        result = table.validate_and_release(_ctx(), index=3, clk=8)
        assert not result.valid
        assert table.occupancy() == 1  # slot untouched

    def test_release_of_free_slot_fails(self):
        table = _table()
        assert not table.validate_and_release(_ctx(), index=0, clk=0).valid


class TestPayloadBlocks:
    def test_store_and_load_round_trip(self):
        table = _table()
        payload = bytes(range(160))
        ctx = _ctx()
        for slot, array in zip(table.block_slots, table.block_arrays):
            table.store_block(ctx, slot, array, index=2, parked_payload=payload)
        assert table.peek_payload(2) == payload
        collected = b"".join(
            table.load_and_clear_block(_ctx(), array, 2) for array in table.block_arrays
        )
        assert collected == payload
        assert table.peek_payload(2) == b""

    def test_short_payload_stores_exact_bytes(self):
        table = _table(parked=160)
        payload = b"x" * 100
        ctx = _ctx()
        for slot, array in zip(table.block_slots, table.block_arrays):
            table.store_block(ctx, slot, array, index=0, parked_payload=payload)
        assert table.peek_payload(0) == payload

    def test_clear_resets_everything(self):
        table = _table()
        table.probe_and_claim(_ctx(), index=1, clk=3, max_exp=1)
        table.clear()
        assert table.occupancy() == 0
        assert table.peek_metadata(1) == MetadataEntry()


class TestPacketTagger:
    def test_tags_advance_and_wrap(self):
        pipeline = Pipeline(stage_count=12)
        tagger = PacketTagger("t", pipeline, table_entries=3, clock_max=4)
        tags = [tagger.next_tag(_ctx()) for _ in range(5)]
        assert [tag.tbl_idx for tag in tags] == [0, 1, 2, 0, 1]
        assert [tag.clk for tag in tags] == [0, 1, 2, 3, 0]

    def test_consecutive_packets_get_distinct_indices(self):
        pipeline = Pipeline(stage_count=12)
        tagger = PacketTagger("t", pipeline, table_entries=100)
        first = tagger.next_tag(_ctx())
        second = tagger.next_tag(_ctx())
        assert first.tbl_idx != second.tbl_idx

    def test_single_packet_cannot_tag_twice(self):
        from repro.switchsim.registers import RegisterAccessError

        pipeline = Pipeline(stage_count=12)
        tagger = PacketTagger("t", pipeline, table_entries=10)
        ctx = _ctx()
        tagger.next_tag(ctx)
        with pytest.raises(RegisterAccessError):
            tagger.next_tag(ctx)

    def test_reset_restores_initial_state(self):
        pipeline = Pipeline(stage_count=12)
        tagger = PacketTagger("t", pipeline, table_entries=5)
        tagger.next_tag(_ctx())
        tagger.reset()
        assert tagger.next_tag(_ctx()).tbl_idx == 0

    def test_invalid_parameters_rejected(self):
        pipeline = Pipeline(stage_count=12)
        with pytest.raises(ValueError):
            PacketTagger("t", pipeline, table_entries=0)
        with pytest.raises(ValueError):
            PacketTagger("t", pipeline, table_entries=4, clock_max=1)
