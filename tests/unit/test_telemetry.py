"""Unit tests for telemetry: latency recorder, goodput math and reports."""

import pytest

from repro.telemetry.goodput import gbps, goodput_gain_percent, savings_percent
from repro.telemetry.latency import LatencyRecorder
from repro.telemetry.report import (
    ComparisonReport,
    DeploymentReport,
    HEALTHY_DROP_RATE,
    render_table,
)


class TestLatencyRecorder:
    def test_mean_and_percentiles(self):
        recorder = LatencyRecorder()
        for value in (1_000, 2_000, 3_000, 4_000, 100_000):
            recorder.record(value)
        assert recorder.mean_us() == pytest.approx(22.0)
        assert recorder.max_us() == pytest.approx(100.0)
        assert recorder.percentile_us(50) == pytest.approx(3.0)
        assert recorder.jitter_us() == pytest.approx(78.0)

    def test_empty_recorder_returns_zero(self):
        recorder = LatencyRecorder()
        assert recorder.mean_us() == 0.0
        assert recorder.percentile_us(99) == 0.0

    def test_rejects_negative_and_bad_percentile(self):
        recorder = LatencyRecorder()
        with pytest.raises(ValueError):
            recorder.record(-1)
        with pytest.raises(ValueError):
            recorder.percentile_us(0)

    def test_since_excludes_warmup_samples(self):
        recorder = LatencyRecorder()
        for value in (1_000, 1_000, 50_000, 50_000):
            recorder.record(value)
        steady = recorder.since(2)
        assert steady.count == 2
        assert steady.mean_us() == pytest.approx(50.0)

    def test_summary_keys(self):
        recorder = LatencyRecorder()
        recorder.record(5_000)
        summary = recorder.summary()
        assert set(summary) == {"mean_us", "p50_us", "p99_us", "max_us", "jitter_us", "samples"}


class TestLatencyEdgeCases:
    """Percentile/jitter behaviour at the boundaries of the sample space."""

    def test_empty_recorder_is_all_zero(self):
        recorder = LatencyRecorder()
        assert recorder.count == 0
        assert recorder.max_us() == 0.0
        assert recorder.jitter_us() == 0.0
        assert recorder.percentile_us(0.001) == 0.0
        assert recorder.percentile_us(100) == 0.0
        assert recorder.summary() == {
            "mean_us": 0.0, "p50_us": 0.0, "p99_us": 0.0,
            "max_us": 0.0, "jitter_us": 0.0, "samples": 0.0,
        }

    def test_single_sample_dominates_every_percentile(self):
        recorder = LatencyRecorder()
        recorder.record(7_000)
        for percentile in (0.1, 1, 50, 99, 99.999, 100):
            assert recorder.percentile_us(percentile) == pytest.approx(7.0)
        assert recorder.mean_us() == recorder.max_us() == pytest.approx(7.0)
        assert recorder.jitter_us() == 0.0

    def test_zero_latency_sample_is_legal(self):
        recorder = LatencyRecorder()
        recorder.record(0)
        assert recorder.count == 1
        assert recorder.mean_us() == 0.0

    def test_duplicate_timestamps_collapse_percentile_spread(self):
        # Same-timestamp bursts produce runs of identical latencies; the
        # nearest-rank percentiles must sit exactly on the duplicate
        # value with zero spread, not interpolate around it.
        recorder = LatencyRecorder()
        for _ in range(99):
            recorder.record(5_000)
        recorder.record(50_000)
        assert recorder.percentile_us(50) == pytest.approx(5.0)
        assert recorder.percentile_us(99) == pytest.approx(5.0)
        assert recorder.percentile_us(99.5) == pytest.approx(50.0)
        assert recorder.percentile_us(100) == pytest.approx(50.0)

    def test_percentile_bounds_are_enforced(self):
        recorder = LatencyRecorder()
        recorder.record(1_000)
        for bad in (0, -5, 100.1):
            with pytest.raises(ValueError):
                recorder.percentile_us(bad)

    def test_since_boundaries(self):
        recorder = LatencyRecorder()
        for value in (1_000, 2_000, 3_000):
            recorder.record(value)
        assert recorder.since(0).count == 3
        assert recorder.since(3).count == 0
        assert recorder.since(3).mean_us() == 0.0
        assert recorder.since(99).count == 0  # beyond the end is empty, not an error

    def test_since_view_shares_no_future_samples(self):
        recorder = LatencyRecorder()
        recorder.record(1_000)
        view = recorder.since(1)
        recorder.record(9_000)
        assert view.count == 0  # the view snapshot does not grow


class TestGoodputWindowBoundaries:
    """gbps() and gain math at degenerate windows and baselines."""

    def test_zero_width_window_is_explicit_zero(self):
        assert gbps(1_000, 0) == 0.0

    def test_negative_window_raises(self):
        # A negative window means the caller swapped interval ends; the
        # old behavior returned 0.0 and masked the bug as "no goodput".
        with pytest.raises(ValueError):
            gbps(1_000, -5)
        with pytest.raises(ValueError):
            gbps(0, -1)

    def test_zero_bytes_over_any_window(self):
        assert gbps(0, 1) == 0.0
        assert gbps(0, 10**12) == 0.0

    def test_sub_nanosecond_window_is_well_defined(self):
        assert gbps(1, 0.5) == pytest.approx(16.0)

    def test_gain_and_savings_with_zero_baselines(self):
        assert goodput_gain_percent(5.0, 0.0) == 0.0
        assert goodput_gain_percent(0.0, 2.0) == pytest.approx(-100.0)
        assert savings_percent(0.0, 5.0) == 0.0
        assert savings_percent(10.0, 0.0) == pytest.approx(100.0)

    def test_negative_baselines_raise(self):
        with pytest.raises(ValueError):
            goodput_gain_percent(5.0, -1.0)
        with pytest.raises(ValueError):
            savings_percent(-1.0, 5.0)
        assert savings_percent(10.0, 12.0) == pytest.approx(-20.0)


class TestGoodputMath:
    def test_gbps_conversion(self):
        assert gbps(125, 1_000) == pytest.approx(1.0)
        assert gbps(100, 0) == 0.0

    def test_gain_and_savings(self):
        assert goodput_gain_percent(1.3, 1.0) == pytest.approx(30.0)
        assert goodput_gain_percent(1.0, 0.0) == 0.0
        assert savings_percent(10.0, 9.0) == pytest.approx(10.0)
        assert savings_percent(0.0, 1.0) == 0.0


class TestReports:
    def _report(self, deployment="baseline", **kwargs):
        defaults = dict(
            deployment=deployment,
            send_rate_gbps=10.0,
            duration_ns=1_000_000,
            packets_sent=10_000,
            packets_delivered=10_000,
            packets_dropped=0,
            goodput_to_nf_gbps=0.5,
            avg_latency_us=30.0,
            pcie_gbps=10.0,
        )
        defaults.update(kwargs)
        return DeploymentReport(**defaults)

    def test_drop_rate_and_health(self):
        healthy = self._report(packets_dropped=5)
        unhealthy = self._report(packets_dropped=100)
        assert healthy.drop_rate < HEALTHY_DROP_RATE and healthy.healthy
        assert not unhealthy.healthy

    def test_functional_equivalence_flag(self):
        assert self._report().functionally_equivalent
        assert not self._report(premature_evictions=3).functionally_equivalent

    def test_comparison_gain_and_savings(self):
        comparison = ComparisonReport(
            baseline=self._report(goodput_to_nf_gbps=0.5, pcie_gbps=10.0, avg_latency_us=30.0),
            payloadpark=self._report(
                deployment="payloadpark",
                goodput_to_nf_gbps=0.6,
                pcie_gbps=8.8,
                avg_latency_us=27.0,
            ),
        )
        assert comparison.goodput_gain_percent == pytest.approx(20.0)
        assert comparison.pcie_savings_percent == pytest.approx(12.0)
        assert comparison.latency_delta_us == pytest.approx(-3.0)
        assert comparison.latency_win_percent == pytest.approx(10.0)

    def test_rows_render_as_table(self):
        comparison = ComparisonReport(baseline=self._report(), payloadpark=self._report())
        text = render_table([comparison.as_row()])
        assert "send_rate_gbps" in text
        assert "|" in text

    def test_render_table_empty(self):
        assert render_table([]) == "(no data)"

    def test_drop_rate_with_nothing_sent(self):
        report = self._report(packets_sent=0, packets_dropped=0)
        assert report.drop_rate == 0.0
        assert report.healthy

    def test_deployment_as_row_is_flat_and_rounded(self):
        row = self._report(avg_latency_us=30.123456).as_row()
        assert row["avg_latency_us"] == 30.12
        assert row["healthy"] is True
        assert set(row) >= {"deployment", "send_rate_gbps", "goodput_gbps",
                            "drop_rate", "premature_evictions"}

    def test_latency_win_percent_degenerate_baseline(self):
        comparison = ComparisonReport(
            baseline=self._report(avg_latency_us=0.0),
            payloadpark=self._report(deployment="payloadpark", avg_latency_us=5.0),
        )
        assert comparison.latency_win_percent == 0.0

    def test_render_table_with_explicit_columns_fills_missing_cells(self):
        text = render_table(
            [{"a": 1}, {"b": 2}], columns=["a", "b"]
        )
        lines = text.splitlines()
        assert lines[0].split("|")[0].strip() == "a"
        assert len(lines) == 4  # header, separator, two rows
