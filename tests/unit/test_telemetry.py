"""Unit tests for telemetry: latency recorder, goodput math and reports."""

import pytest

from repro.telemetry.goodput import gbps, goodput_gain_percent, savings_percent
from repro.telemetry.latency import LatencyRecorder
from repro.telemetry.report import (
    ComparisonReport,
    DeploymentReport,
    HEALTHY_DROP_RATE,
    render_table,
)


class TestLatencyRecorder:
    def test_mean_and_percentiles(self):
        recorder = LatencyRecorder()
        for value in (1_000, 2_000, 3_000, 4_000, 100_000):
            recorder.record(value)
        assert recorder.mean_us() == pytest.approx(22.0)
        assert recorder.max_us() == pytest.approx(100.0)
        assert recorder.percentile_us(50) == pytest.approx(3.0)
        assert recorder.jitter_us() == pytest.approx(78.0)

    def test_empty_recorder_returns_zero(self):
        recorder = LatencyRecorder()
        assert recorder.mean_us() == 0.0
        assert recorder.percentile_us(99) == 0.0

    def test_rejects_negative_and_bad_percentile(self):
        recorder = LatencyRecorder()
        with pytest.raises(ValueError):
            recorder.record(-1)
        with pytest.raises(ValueError):
            recorder.percentile_us(0)

    def test_since_excludes_warmup_samples(self):
        recorder = LatencyRecorder()
        for value in (1_000, 1_000, 50_000, 50_000):
            recorder.record(value)
        steady = recorder.since(2)
        assert steady.count == 2
        assert steady.mean_us() == pytest.approx(50.0)

    def test_summary_keys(self):
        recorder = LatencyRecorder()
        recorder.record(5_000)
        summary = recorder.summary()
        assert set(summary) == {"mean_us", "p50_us", "p99_us", "max_us", "jitter_us", "samples"}


class TestGoodputMath:
    def test_gbps_conversion(self):
        assert gbps(125, 1_000) == pytest.approx(1.0)
        assert gbps(100, 0) == 0.0

    def test_gain_and_savings(self):
        assert goodput_gain_percent(1.3, 1.0) == pytest.approx(30.0)
        assert goodput_gain_percent(1.0, 0.0) == 0.0
        assert savings_percent(10.0, 9.0) == pytest.approx(10.0)
        assert savings_percent(0.0, 1.0) == 0.0


class TestReports:
    def _report(self, deployment="baseline", **kwargs):
        defaults = dict(
            deployment=deployment,
            send_rate_gbps=10.0,
            duration_ns=1_000_000,
            packets_sent=10_000,
            packets_delivered=10_000,
            packets_dropped=0,
            goodput_to_nf_gbps=0.5,
            avg_latency_us=30.0,
            pcie_gbps=10.0,
        )
        defaults.update(kwargs)
        return DeploymentReport(**defaults)

    def test_drop_rate_and_health(self):
        healthy = self._report(packets_dropped=5)
        unhealthy = self._report(packets_dropped=100)
        assert healthy.drop_rate < HEALTHY_DROP_RATE and healthy.healthy
        assert not unhealthy.healthy

    def test_functional_equivalence_flag(self):
        assert self._report().functionally_equivalent
        assert not self._report(premature_evictions=3).functionally_equivalent

    def test_comparison_gain_and_savings(self):
        comparison = ComparisonReport(
            baseline=self._report(goodput_to_nf_gbps=0.5, pcie_gbps=10.0, avg_latency_us=30.0),
            payloadpark=self._report(
                deployment="payloadpark",
                goodput_to_nf_gbps=0.6,
                pcie_gbps=8.8,
                avg_latency_us=27.0,
            ),
        )
        assert comparison.goodput_gain_percent == pytest.approx(20.0)
        assert comparison.pcie_savings_percent == pytest.approx(12.0)
        assert comparison.latency_delta_us == pytest.approx(-3.0)
        assert comparison.latency_win_percent == pytest.approx(10.0)

    def test_rows_render_as_table(self):
        comparison = ComparisonReport(baseline=self._report(), payloadpark=self._report())
        text = render_table([comparison.as_row()])
        assert "send_rate_gbps" in text
        assert "|" in text

    def test_render_table_empty(self):
        assert render_table([]) == "(no data)"
