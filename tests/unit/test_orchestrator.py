"""Unit tests for the campaign orchestrator: specs, store, executor, aggregation."""

import json

import pytest

from repro.experiments import fig07_goodput_latency, fig14_memory_sweep
from repro.experiments.runner import DeploymentKind, ExperimentRunner
from repro.experiments.scenarios import fw_nat_lb_10ge
from repro.nf.framework import NETBRICKS, OPENNETVM
from repro.orchestrator import (
    CampaignExecutor,
    CampaignSpec,
    ResultStore,
    RunSpec,
    build_scenario,
    derived_seed,
    execute_run,
)
from repro.orchestrator.aggregate import campaign_rows, group_rows
from repro.orchestrator.spec import dedupe_specs

#: Simulated-time scale keeping each run cheap while still exercising traffic.
FAST = 0.05


def small_campaign(**kwargs) -> CampaignSpec:
    defaults = dict(
        name="test-grid",
        scenario="fw_nat_lb_10ge",
        grid={"send_rate_gbps": [2.0, 4.0, 6.0, 8.0], "expiry_threshold": [1, 4]},
        time_scale=FAST,
    )
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


class TestRunSpec:
    def test_hash_is_stable_across_param_order(self):
        a = RunSpec("fw_nat_lb_10ge", params={"send_rate_gbps": 8.0, "seed": 1})
        b = RunSpec("fw_nat_lb_10ge", params={"seed": 1, "send_rate_gbps": 8.0})
        assert a.spec_hash == b.spec_hash

    def test_hash_changes_with_any_input(self):
        base = RunSpec("fw_nat_lb_10ge", params={"send_rate_gbps": 8.0})
        assert base.spec_hash != RunSpec(
            "fw_nat_lb_10ge", params={"send_rate_gbps": 9.0}
        ).spec_hash
        assert base.spec_hash != RunSpec(
            "fw_nat_40ge_enterprise", params={"send_rate_gbps": 8.0}
        ).spec_hash
        assert base.spec_hash != RunSpec(
            "fw_nat_lb_10ge", params={"send_rate_gbps": 8.0}, time_scale=0.5
        ).spec_hash
        assert base.spec_hash != RunSpec(
            "fw_nat_lb_10ge", mode="peak", params={"send_rate_gbps": 8.0}
        ).spec_hash

    def test_hash_matches_known_value(self):
        # Pinned: the resume key must stay stable across sessions/processes.
        spec = RunSpec("fw_nat_lb_10ge", params={"send_rate_gbps": 8.0})
        assert spec.spec_hash == spec.spec_hash
        assert len(spec.spec_hash) == 16
        int(spec.spec_hash, 16)  # hex

    def test_rejects_unknown_scenario_and_mode(self):
        with pytest.raises(ValueError):
            RunSpec("not-a-scenario")
        with pytest.raises(ValueError):
            RunSpec("fw_nat_lb_10ge", mode="explore")

    def test_dedupe_preserves_order(self):
        a = RunSpec("fw_nat_lb_10ge", params={"send_rate_gbps": 2.0})
        b = RunSpec("fw_nat_lb_10ge", params={"send_rate_gbps": 4.0})
        assert dedupe_specs([a, b, a]) == [a, b]


class TestCampaignSpec:
    def test_expand_is_cartesian_and_ordered(self):
        campaign = small_campaign()
        runs = campaign.expand()
        assert len(runs) == campaign.point_count == 8
        assert len({run.spec_hash for run in runs}) == 8
        # expiry_threshold sorts before send_rate_gbps, so it varies slowest.
        assert [run.params["expiry_threshold"] for run in runs[:4]] == [1, 1, 1, 1]
        assert [run.params["send_rate_gbps"] for run in runs[:4]] == [2.0, 4.0, 6.0, 8.0]

    def test_base_and_grid_may_not_overlap(self):
        with pytest.raises(ValueError):
            small_campaign(base={"expiry_threshold": 1})

    def test_per_run_seed_policy_is_deterministic(self):
        campaign = small_campaign(seed_policy="per-run")
        seeds = [run.params["seed"] for run in campaign.expand()]
        assert seeds == [run.params["seed"] for run in campaign.expand()]
        assert len(set(seeds)) == len(seeds)
        assert seeds[0] == derived_seed(
            "fw_nat_lb_10ge", {"expiry_threshold": 1, "send_rate_gbps": 2.0}
        )

    def test_roundtrip_through_dict_and_files(self, tmp_path):
        campaign = small_campaign(base={"seed": 7}, description="roundtrip")
        restored = CampaignSpec.from_dict(campaign.to_dict())
        assert [r.spec_hash for r in restored.expand()] == [
            r.spec_hash for r in campaign.expand()
        ]

        json_path = tmp_path / "campaign.json"
        json_path.write_text(json.dumps(campaign.to_dict()))
        from_json = CampaignSpec.from_file(json_path)
        assert from_json.expand()[0].spec_hash == campaign.expand()[0].spec_hash

        yaml = pytest.importorskip("yaml")
        yaml_path = tmp_path / "campaign.yaml"
        yaml_path.write_text(yaml.safe_dump(campaign.to_dict()))
        from_yaml = CampaignSpec.from_file(yaml_path)
        assert from_yaml.expand()[0].spec_hash == campaign.expand()[0].spec_hash

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            CampaignSpec.from_dict({"name": "x", "scenario": "fw_nat_lb_10ge", "grids": {}})

    def test_from_file_rejects_malformed_yaml(self, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "broken.yaml"
        path.write_text("name: [unclosed\nscenario: fw_nat_lb_10ge\n")
        with pytest.raises(ValueError, match="not valid YAML"):
            CampaignSpec.from_file(path)


class TestBuildScenario:
    def test_builder_kwargs_and_overrides_route_correctly(self):
        run = RunSpec(
            "fw_nat_lb_10ge",
            params={
                "send_rate_gbps": 9.0,      # builder kwarg
                "sram_fraction": 0.40,      # PayloadPark override
                "expiry_threshold": 10,     # PayloadPark override
                "seed": 7,                  # scenario override
                "framework": "opennetvm",   # special-cased override
            },
        )
        scenario = build_scenario(run)
        assert scenario.send_rate_gbps == 9.0
        assert scenario.payloadpark.sram_fraction == 0.40
        assert scenario.payloadpark.expiry_threshold == 10
        assert scenario.seed == 7
        assert scenario.framework is OPENNETVM

    def test_defaults_match_direct_scenario_construction(self):
        scenario = build_scenario(RunSpec("fw_nat_lb_10ge"))
        direct = fw_nat_lb_10ge()
        assert scenario.send_rate_gbps == direct.send_rate_gbps
        assert scenario.seed == direct.seed
        assert scenario.framework is NETBRICKS

    def test_packet_size_override_swaps_workload(self):
        scenario = build_scenario(
            RunSpec("fw_nat_lb_10ge", params={"packet_size": 384})
        )
        assert scenario.workload.name == "fixed-384B"

    def test_unknown_parameter_raises(self):
        with pytest.raises(ValueError, match="unknown campaign parameter"):
            build_scenario(RunSpec("fw_nat_lb_10ge", params={"warp_factor": 9}))

    def test_missing_required_builder_arg_raises(self):
        with pytest.raises(ValueError, match="could not be built"):
            build_scenario(RunSpec("fixed_size_40ge", params={"packet_size": 384}))


class TestResultStore:
    def test_append_load_and_resume_set(self, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        assert store.load() == []
        assert store.completed_hashes() == set()
        store.append({"spec_hash": "aa", "status": "ok", "metrics": {"x": 1}})
        store.append({"spec_hash": "bb", "status": "error", "error": "boom"})
        assert store.record_count() == 2
        assert store.completed_hashes() == {"aa"}

    def test_corrupt_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = ResultStore(path)
        store.append({"spec_hash": "aa", "status": "ok"})
        with path.open("a") as handle:
            handle.write('{"spec_hash": "bb", "status": "o')  # killed mid-write
        assert store.completed_hashes() == {"aa"}
        # The store stays appendable after the torn write.
        store.append({"spec_hash": "cc", "status": "ok"})
        assert store.completed_hashes() == {"aa", "cc"}

    def test_corrupt_trailing_line_warns(self, tmp_path):
        import logging

        path = tmp_path / "runs.jsonl"
        store = ResultStore(path)
        store.append({"spec_hash": "aa", "status": "ok"})
        with path.open("a") as handle:
            handle.write('{"spec_hash": "bb", "status": "o')  # truncated record
        # The CLI's stderr handler sets propagate=False on the "repro"
        # root, so listen on the store's own logger directly.
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        store_logger = logging.getLogger("repro.orchestrator.store")
        handler = Capture()
        store_logger.addHandler(handler)
        try:
            assert [r["spec_hash"] for r in store.load()] == ["aa"]
        finally:
            store_logger.removeHandler(handler)
        assert len(records) == 1
        assert records[0].levelno == logging.WARNING
        message = records[0].getMessage()
        assert str(path) in message and ":2:" in message
        assert "torn" in message

    def test_latest_record_wins(self, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        store.append({"spec_hash": "aa", "status": "ok", "metrics": {"x": 1}})
        store.append({"spec_hash": "aa", "status": "ok", "metrics": {"x": 2}})
        assert store.latest_by_hash()["aa"]["metrics"] == {"x": 2}

    def test_ok_wins_over_later_failed_retry(self, tmp_path):
        """Regression: a failed retry after an ok record must not shadow it.

        `campaign status` (store.latest_by_hash) and `campaign report`
        (aggregate.latest_ok_by_hash) must agree about the same cell.
        """
        from repro.orchestrator.aggregate import latest_ok_by_hash

        store = ResultStore(tmp_path / "runs.jsonl")
        store.append({"spec_hash": "aa", "status": "ok", "metrics": {"x": 1}})
        store.append({"spec_hash": "aa", "status": "error", "error": "flake"})
        store.append({"spec_hash": "bb", "status": "error", "error": "boom"})

        latest = store.latest_by_hash()
        assert latest["aa"]["status"] == "ok"
        assert latest["aa"]["metrics"] == {"x": 1}
        assert latest["bb"]["status"] == "error"  # never-ok: real status
        assert store.completed_hashes() == {"aa"}
        # Both entry points return the identical authoritative record.
        assert latest_ok_by_hash(store.load())["aa"] == latest["aa"]

    def test_attempt_counts_track_failures_only(self, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        store.append({"spec_hash": "aa", "status": "error", "error": "1"})
        store.append({"spec_hash": "aa", "status": "violation", "error": "2"})
        store.append({"spec_hash": "bb", "status": "ok"})
        store.append({"spec_hash": "cc", "status": "exhausted", "attempts": 3})
        counts = store.attempt_counts()
        assert counts == {"aa": 2}  # ok and exhausted markers are not attempts

    def test_record_count_extends_from_cursor(self, tmp_path):
        """Regression: __len__ must not rescan the file on every poll."""
        path = tmp_path / "runs.jsonl"
        store = ResultStore(path)
        store.append({"spec_hash": "aa", "status": "ok"})
        assert len(store) == 1
        # An external writer appends (another process's perspective).
        with path.open("a") as handle:
            handle.write('{"spec_hash": "bb", "status": "ok"}\n')
            handle.write('{"spec_hash": "cc", "status": "o')  # torn tail
        assert store.record_count() == 2  # torn line stays unconsumed
        with path.open("a") as handle:
            handle.write('k"}\n')  # the tail completes
        assert store.record_count() == 3
        assert store.completed_hashes() == {"aa", "bb", "cc"}
        # After consuming everything, the cursor sits at EOF: a repeat
        # poll folds zero new lines.
        assert store.refresh() == 0

    def test_truncated_file_rebuilds_index(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = ResultStore(path)
        store.append({"spec_hash": "aa", "status": "ok"})
        store.append({"spec_hash": "bb", "status": "ok"})
        assert len(store) == 2
        path.write_text('{"spec_hash": "cc", "status": "ok"}\n')
        assert store.completed_hashes() == {"cc"}
        assert len(store) == 1


class TestShardedStore:
    def test_appends_split_across_shards_and_read_back(self, tmp_path):
        base = tmp_path / "grid.jsonl"
        store = ResultStore(base, shards=4)
        hashes = [f"{value:016x}" for value in range(8)]
        for spec_hash in hashes:
            store.append({"spec_hash": spec_hash, "status": "ok"})
        assert not base.exists()  # sharded layout only
        shard_files = sorted(tmp_path.glob("grid.shard-*.jsonl"))
        assert len(shard_files) == 4
        assert store.completed_hashes() == set(hashes)
        assert store.record_count() == 8

    def test_one_hash_always_lands_in_one_file(self, tmp_path):
        store = ResultStore(tmp_path / "grid.jsonl", shards=3)
        for attempt in range(3):
            store.append({"spec_hash": "ab34", "status": "error", "n": attempt})
        store.append({"spec_hash": "ab34", "status": "ok", "n": 99})
        holding = [
            path for path in tmp_path.glob("grid.shard-*.jsonl")
            if "ab34" in path.read_text()
        ]
        assert len(holding) == 1
        # Per-hash append order survived: latest-wins still works.
        assert store.latest_by_hash()["ab34"]["n"] == 99
        assert store.attempt_counts() == {"ab34": 3}

    def test_legacy_single_file_resumes_into_shards(self, tmp_path):
        base = tmp_path / "grid.jsonl"
        legacy = ResultStore(base)
        legacy.append({"spec_hash": "aa", "status": "ok"})
        # The same campaign, promoted to shards: old records still count.
        promoted = ResultStore(base, shards=2)
        assert promoted.completed_hashes() == {"aa"}
        promoted.append({"spec_hash": "bb", "status": "ok"})
        assert base.read_text().count("\n") == 1  # legacy file untouched
        assert promoted.completed_hashes() == {"aa", "bb"}
        # A fresh reader with no shard config auto-detects the layout.
        fresh = ResultStore(base)
        assert fresh.completed_hashes() == {"aa", "bb"}
        assert fresh.shards == 1  # one shard file detected

    def test_shard_detection_ignores_other_campaigns(self, tmp_path):
        other = ResultStore(tmp_path / "grid-extra.jsonl", shards=2)
        other.append({"spec_hash": "ff", "status": "ok"})
        store = ResultStore(tmp_path / "grid.jsonl")
        assert store.completed_hashes() == set()

    def test_rejects_bad_shard_count(self, tmp_path):
        with pytest.raises(ValueError, match="shards"):
            ResultStore(tmp_path / "grid.jsonl", shards=0)


class TestExecutor:
    def test_execute_run_records_failure_instead_of_raising(self):
        # duration shorter than warmup -> ExperimentRunner raises.
        record = execute_run(
            RunSpec("fw_nat_lb_10ge", params={"duration_us": 10.0, "warmup_us": 20.0})
        )
        assert record["status"] == "error"
        assert "warmup" in record["error"]

    def test_parallel_campaign_persists_and_resumes(self, tmp_path):
        """Acceptance: an 8-point grid over 2 workers, one record per run,
        and a second invocation skips every completed point."""
        campaign = small_campaign()
        store = ResultStore(tmp_path / "grid.jsonl")

        first = CampaignExecutor(workers=2).run_campaign(campaign, store=store)
        assert first.total == 8
        assert first.executed == 8
        assert first.failed == 0
        assert store.record_count() == 8
        hashes = {record["spec_hash"] for record in store.load()}
        assert hashes == {run.spec_hash for run in campaign.expand()}

        second = CampaignExecutor(workers=2).run_campaign(campaign, store=store)
        assert second.skipped == 8
        assert second.executed == 0
        assert store.record_count() == 8

    def test_parallel_matches_serial_results(self, tmp_path):
        campaign = small_campaign(grid={"send_rate_gbps": [4.0, 8.0]})
        serial = CampaignExecutor(workers=1).run_campaign(campaign)
        parallel = CampaignExecutor(workers=2).run_campaign(campaign)
        by_hash = lambda summary: {  # noqa: E731
            record["spec_hash"]: record["metrics"] for record in summary.records
        }
        assert by_hash(serial) == by_hash(parallel)

    def test_resume_retries_failed_runs(self, tmp_path):
        campaign = small_campaign(grid={"send_rate_gbps": [4.0]})
        store = ResultStore(tmp_path / "grid.jsonl")
        spec_hash = campaign.expand()[0].spec_hash
        store.append({"spec_hash": spec_hash, "status": "error", "error": "crash"})
        summary = CampaignExecutor(workers=1).run_campaign(campaign, store=store)
        assert summary.executed == 1
        assert store.completed_hashes() == {spec_hash}

    def test_resume_exhausts_cells_past_the_retry_budget(self, tmp_path):
        """Regression: resume must not re-run a deterministically failing
        cell forever — at the budget it is stamped `exhausted` once."""
        campaign = small_campaign(grid={"send_rate_gbps": [4.0]})
        store = ResultStore(tmp_path / "grid.jsonl")
        spec_hash = campaign.expand()[0].spec_hash
        for attempt in range(3):
            store.append(
                {"spec_hash": spec_hash, "status": "error", "error": f"boom {attempt}"}
            )

        summary = CampaignExecutor(workers=1, max_attempts=3).run_campaign(
            campaign, store=store
        )
        assert summary.executed == 1
        assert summary.failed == 1
        assert summary.exhausted == 1
        marker = store.latest_by_hash()[spec_hash]
        assert marker["status"] == "exhausted"
        assert marker["attempts"] == 3
        assert "retry budget exhausted" in marker["error"]
        with pytest.raises(RuntimeError, match="retry budget"):
            summary.raise_on_failure()

        # A second resume skips the cell without stamping another marker.
        again = CampaignExecutor(workers=1, max_attempts=3).run_campaign(
            campaign, store=store
        )
        assert again.executed == 0
        assert again.skipped == 1
        assert again.exhausted == 0
        assert store.record_count() == 4

    def test_sharded_resume_keeps_exhausted_terminal(self, tmp_path):
        """Regression (sharded path): once a cell carries only a terminal
        `exhausted` marker inside a shard file, no surface may call it
        pending — a fresh auto-detecting reader must find the marker,
        the aggregate row must say 'exhausted', and a resume must skip
        the cell without stamping another marker."""
        campaign = small_campaign(grid={"send_rate_gbps": [4.0]})
        spec_hash = campaign.expand()[0].spec_hash
        seeded = ResultStore(tmp_path / "grid.jsonl", shards=3)
        for attempt in range(3):
            seeded.append(
                {"spec_hash": spec_hash, "status": "error", "error": f"boom {attempt}"}
            )
        summary = CampaignExecutor(workers=1, max_attempts=3).run_campaign(
            campaign, store=seeded
        )
        assert summary.exhausted == 1

        # Re-open with no shard config: the layout is auto-detected and
        # the terminal marker read back out of its shard file.
        fresh = ResultStore(tmp_path / "grid.jsonl")
        latest = fresh.latest_by_hash()
        assert latest[spec_hash]["status"] == "exhausted"
        assert fresh.completed_hashes() == set()

        # The `campaign status` arithmetic: the cell is exhausted, not
        # pending (and certainly not completed).
        specs = campaign.expand()
        done = sum(1 for spec in specs if spec.spec_hash in fresh.completed_hashes())
        exhausted = sum(
            1
            for spec in specs
            if latest.get(spec.spec_hash, {}).get("status") == "exhausted"
        )
        assert done == 0
        assert len(specs) - done - exhausted == 0  # pending count

        # The aggregate surface agrees.
        rows = campaign_rows(campaign, fresh.load(), include_missing=True)
        assert [row["status"] for row in rows] == ["exhausted"]

        # Resuming against the re-opened store skips the cell cleanly.
        again = CampaignExecutor(workers=1, max_attempts=3).run_campaign(
            campaign, store=fresh
        )
        assert again.executed == 0
        assert again.skipped == 1
        assert again.exhausted == 0
        assert fresh.record_count() == 4  # 3 errors + 1 marker, nothing new

    def test_below_budget_failures_are_still_retried(self, tmp_path):
        campaign = small_campaign(grid={"send_rate_gbps": [4.0]})
        store = ResultStore(tmp_path / "grid.jsonl")
        spec_hash = campaign.expand()[0].spec_hash
        store.append({"spec_hash": spec_hash, "status": "error", "error": "flake"})
        store.append({"spec_hash": spec_hash, "status": "error", "error": "flake"})
        summary = CampaignExecutor(workers=1, max_attempts=3).run_campaign(
            campaign, store=store
        )
        assert summary.executed == 1
        assert summary.exhausted == 0
        assert store.completed_hashes() == {spec_hash}

    def test_max_attempts_zero_never_exhausts(self, tmp_path):
        campaign = small_campaign(grid={"send_rate_gbps": [4.0]})
        store = ResultStore(tmp_path / "grid.jsonl")
        spec_hash = campaign.expand()[0].spec_hash
        for _ in range(10):
            store.append({"spec_hash": spec_hash, "status": "error", "error": "x"})
        summary = CampaignExecutor(workers=1, max_attempts=0).run_campaign(
            campaign, store=store
        )
        assert summary.exhausted == 0
        assert store.completed_hashes() == {spec_hash}

    def test_summary_raise_on_failure_lists_errors(self):
        from repro.orchestrator import CampaignSummary

        CampaignSummary(total=2, executed=2).raise_on_failure()  # no-op
        summary = CampaignSummary(
            total=1,
            executed=1,
            failed=1,
            records=[
                {
                    "status": "error",
                    "scenario": "fw_nat_lb_10ge",
                    "params": {"send_rate_gbps": 8.0},
                    "error": "ValueError: boom",
                }
            ],
        )
        with pytest.raises(RuntimeError, match="boom"):
            summary.raise_on_failure()

    def test_figure_port_raises_on_failed_grid_point(self):
        runner = ExperimentRunner(time_scale=FAST)
        with pytest.raises(RuntimeError, match="campaign runs failed"):
            # Negative rate makes the traffic generator reject the run.
            fig07_goodput_latency.run((-1.0,), runner=runner)

    def test_peak_mode_records_peak_metrics(self):
        record = execute_run(
            RunSpec(
                "memory_sweep",
                mode="peak",
                params={"sram_fraction": 0.26},
                options={
                    "deployment": "payloadpark",
                    "rate_bounds_gbps": [4.0, 12.0],
                    "tolerance_gbps": 8.0,
                },
                time_scale=FAST,
            )
        )
        assert record["status"] == "ok"
        assert record["metrics"]["peak_send_rate_gbps"] >= 4.0
        assert "peak_goodput_to_nf_gbps" in record["metrics"]


class TestAggregate:
    def test_campaign_rows_follow_grid_order(self, tmp_path):
        campaign = small_campaign(grid={"send_rate_gbps": [8.0, 4.0]})
        store = ResultStore(tmp_path / "grid.jsonl")
        CampaignExecutor(workers=1).run_campaign(campaign, store=store)
        rows = campaign_rows(
            campaign, store.load(), metric_columns=["goodput_gain_percent"]
        )
        assert [row["send_rate_gbps"] for row in rows] == [8.0, 4.0]
        assert all("goodput_gain_percent" in row for row in rows)

    def test_campaign_rows_marks_missing_points(self):
        campaign = small_campaign(grid={"send_rate_gbps": [4.0, 8.0]})
        rows = campaign_rows(campaign, [], include_missing=True)
        assert [row["status"] for row in rows] == ["pending", "pending"]
        assert campaign_rows(campaign, []) == []

    def test_group_rows_reductions(self):
        rows = [
            {"chain": "fw", "gain": 10.0},
            {"chain": "fw", "gain": 20.0},
            {"chain": "nat", "gain": 5.0},
        ]
        grouped = group_rows(rows, by=["chain"], reductions={"gain": "mean"})
        assert grouped == [{"chain": "fw", "gain": 15.0}, {"chain": "nat", "gain": 5.0}]
        with pytest.raises(ValueError):
            group_rows(rows, by=["chain"], reductions={"gain": "median"})


class TestFigurePorts:
    def test_fig07_rows_match_legacy_direct_loop(self):
        runner = ExperimentRunner(time_scale=FAST)
        rates = (4.0, 10.5)
        legacy = []
        for rate in rates:
            comparison = runner.compare(fw_nat_lb_10ge(send_rate_gbps=rate)).comparison
            legacy.append(
                {
                    "send_rate_gbps": rate,
                    "baseline_goodput_gbps": round(
                        comparison.baseline.goodput_to_nf_gbps, 4
                    ),
                    "payloadpark_goodput_gbps": round(
                        comparison.payloadpark.goodput_to_nf_gbps, 4
                    ),
                    "goodput_gain_percent": round(comparison.goodput_gain_percent, 2),
                    "baseline_latency_us": round(comparison.baseline.avg_latency_us, 2),
                    "payloadpark_latency_us": round(
                        comparison.payloadpark.avg_latency_us, 2
                    ),
                    "baseline_healthy": comparison.baseline.healthy,
                    "payloadpark_healthy": comparison.payloadpark.healthy,
                }
            )
        assert fig07_goodput_latency.run(rates, runner=runner) == legacy

    def test_fig14_rows_match_legacy_direct_loop(self):
        runner = ExperimentRunner(time_scale=FAST)
        fractions = (0.26,)
        bounds, tolerance = (4.0, 12.0), 8.0
        _rate, baseline_report = runner.peak_goodput(
            build_scenario(RunSpec("memory_sweep", params={"sram_fraction": 0.26})),
            deployment=DeploymentKind.BASELINE,
            require_zero_premature_evictions=False,
            rate_bounds_gbps=bounds,
            tolerance_gbps=tolerance,
        )
        rate, report = runner.peak_goodput(
            build_scenario(RunSpec("memory_sweep", params={"sram_fraction": 0.26})),
            deployment=DeploymentKind.PAYLOADPARK,
            require_zero_premature_evictions=True,
            rate_bounds_gbps=bounds,
            tolerance_gbps=tolerance,
        )
        legacy = [
            {
                "sram_fraction_percent": 26.0,
                "peak_send_rate_gbps": round(rate, 2),
                "peak_goodput_gbps": round(report.goodput_to_nf_gbps, 4),
                "premature_evictions": report.premature_evictions,
                "drop_rate": round(report.drop_rate, 5),
                "baseline_peak_goodput_gbps": round(
                    baseline_report.goodput_to_nf_gbps, 4
                ),
            }
        ]
        assert (
            fig14_memory_sweep.run(
                fractions,
                runner=runner,
                rate_bounds_gbps=bounds,
                tolerance_gbps=tolerance,
            )
            == legacy
        )
