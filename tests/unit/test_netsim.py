"""Unit tests for the discrete-event substrate: event loop, links, NIC, PCIe."""

import pytest

from repro.netsim.eventloop import EventLoop
from repro.netsim.link import Link
from repro.netsim.nic import NIC_10GE, NIC_40GE, NicPort
from repro.netsim.node import Node
from repro.netsim.pcie import PcieBus, PcieSpec
from repro.packet.packet import Packet


class _Sink(Node):
    """A node that records every frame it receives."""

    def __init__(self, env, name="sink"):
        super().__init__(env, name)
        self.received = []

    def handle_packet(self, packet, port):
        self.received.append((self.env.now, port, packet))


class TestEventLoop:
    def test_events_run_in_time_order(self):
        env = EventLoop()
        order = []
        env.schedule_in(50, lambda: order.append("b"))
        env.schedule_in(10, lambda: order.append("a"))
        env.run_until(100)
        assert order == ["a", "b"]
        assert env.now == 100

    def test_ties_preserve_scheduling_order(self):
        env = EventLoop()
        order = []
        env.schedule_at(5, lambda: order.append(1))
        env.schedule_at(5, lambda: order.append(2))
        env.run_until(10)
        assert order == [1, 2]

    def test_cannot_schedule_in_past(self):
        env = EventLoop()
        env.schedule_in(10, lambda: None)
        env.run_until(10)
        with pytest.raises(ValueError):
            env.schedule_at(5, lambda: None)
        with pytest.raises(ValueError):
            env.schedule_in(-1, lambda: None)

    def test_run_until_leaves_future_events_queued(self):
        env = EventLoop()
        env.schedule_in(100, lambda: None)
        env.run_until(50)
        assert env.pending_events == 1
        assert env.now == 50

    def test_run_all_drains_queue(self):
        env = EventLoop()
        hits = []
        for delay in (5, 15, 25):
            env.schedule_in(delay, lambda d=delay: hits.append(d))
        env.run_all()
        assert hits == [5, 15, 25]
        assert env.now_seconds == pytest.approx(25e-9)


class TestLink:
    def _pair(self, bandwidth_gbps=10.0, buffer_bytes=10_000, propagation_delay_ns=100):
        env = EventLoop()
        a, b = _Sink(env, "a"), _Sink(env, "b")
        link = Link(
            env, a, 0, b, 0,
            bandwidth_gbps=bandwidth_gbps,
            propagation_delay_ns=propagation_delay_ns,
            buffer_bytes=buffer_bytes,
        )
        return env, a, b, link

    def test_delivery_includes_serialization_and_propagation(self):
        env, a, b, link = self._pair()
        packet = Packet.udp(total_size=1000)
        a.send_out(0, packet)
        env.run_until(10_000)
        assert len(b.received) == 1
        arrival, _port, _pkt = b.received[0]
        assert arrival == 1000 * 8 // 10 + 100  # 800 ns serialization + 100 ns propagation

    def test_back_to_back_frames_queue_behind_each_other(self):
        env, a, b, link = self._pair()
        for _ in range(3):
            a.send_out(0, Packet.udp(total_size=1000))
        env.run_until(100_000)
        arrivals = [t for t, _p, _k in b.received]
        assert arrivals == sorted(arrivals)
        assert arrivals[1] - arrivals[0] == pytest.approx(800, abs=2)

    def test_buffer_overflow_drops(self):
        env, a, b, link = self._pair(buffer_bytes=1_500)
        for _ in range(5):
            a.send_out(0, Packet.udp(total_size=1000))
        env.run_until(1_000_000)
        assert len(b.received) == 1
        assert link.total_drops() == 4

    def test_full_duplex_directions_are_independent(self):
        env, a, b, link = self._pair()
        a.send_out(0, Packet.udp(total_size=500))
        b.send_out(0, Packet.udp(total_size=500))
        env.run_until(1_000_000)
        assert len(a.received) == 1 and len(b.received) == 1
        assert link.direction_stats(a).frames_sent == 1
        assert link.direction_stats(b).frames_sent == 1

    def test_rejects_foreign_sender(self):
        env, a, b, link = self._pair()
        stranger = _Sink(env, "stranger")
        with pytest.raises(ValueError):
            link.transmit(Packet.udp(total_size=100), stranger)

    def test_rejects_double_attachment(self):
        env = EventLoop()
        a, b, c = _Sink(env, "a"), _Sink(env, "b"), _Sink(env, "c")
        Link(env, a, 0, b, 0)
        with pytest.raises(ValueError):
            Link(env, a, 0, c, 0)

    def test_rejects_nonpositive_bandwidth(self):
        env = EventLoop()
        with pytest.raises(ValueError):
            Link(env, _Sink(env, "a"), 0, _Sink(env, "b"), 0, bandwidth_gbps=0)


class TestNic:
    def test_rx_rate_limits_spacing(self):
        nic = NicPort(NIC_10GE)
        first = nic.rx_ready_at(0, 1250)  # 1 µs at 10 Gbps (9.7 effective)
        second = nic.rx_ready_at(0, 1250)
        assert second > first
        assert nic.rx_packets == 2

    def test_40ge_effective_rate_below_line_rate(self):
        assert NIC_40GE.effective_rx_gbps < NIC_40GE.speed_gbps

    def test_tx_accounting(self):
        nic = NicPort(NIC_10GE)
        nic.tx_ready_at(0, 500)
        assert nic.tx_bytes == 500
        nic.note_rx_drop()
        assert nic.rx_dropped == 1


class TestPcie:
    def test_transfer_accounting_includes_overhead(self):
        bus = PcieBus(PcieSpec(per_packet_overhead_bytes=8))
        bus.rx_transfer(100)
        bus.tx_transfer(50)
        assert bus.rx_bytes == 108
        assert bus.tx_bytes == 58
        assert bus.total_bytes == 166

    def test_transfer_delay_scales_with_size(self):
        bus = PcieBus()
        assert bus.rx_transfer(10_000) > bus.rx_transfer(100)

    def test_bandwidth_over_window(self):
        bus = PcieBus(PcieSpec(per_packet_overhead_bytes=0))
        bus.rx_transfer(125)  # 1000 bits
        assert bus.bandwidth_gbps_over(1_000) == pytest.approx(1.0)
        assert 0 < bus.utilization_over(1_000) < 1
