"""Unit coverage for the fast-path building blocks.

Each optimization is admissible only if it is observationally identical
to the reference implementation; these tests pin that equivalence at
the component level (the golden-figure suite pins it end to end).
"""

import pytest

from repro.core.config import NfServerBinding, PayloadParkConfig
from repro.core.program import BaselineProgram, PayloadParkProgram
from repro.nf.firewall import Firewall, FirewallRule
from repro.packet.ipv4 import IPv4Address
from repro.packet.pool import FramePool
from repro.traffic.pktgen import (
    PacketFactory,
    PktGenConfig,
    blacklisted_source,
    build_udp_frame,
)
from repro.traffic.workload import Workload


def _binding():
    return NfServerBinding(
        name="srv0", ingress_ports=(0, 1), nf_port=2, default_egress_port=0
    )


class TestFramePool:
    def test_pooled_frame_is_byte_identical_to_reference(self):
        pool = FramePool("02:00:00:00:00:01", "02:00:00:00:00:02")
        flows = Workload.enterprise().flows.flows()
        for flow in flows[:16]:
            for size in (64, 342, 1514):
                reference = build_udp_frame(
                    size,
                    flow,
                    src_mac="02:00:00:00:00:01",
                    dst_mac="02:00:00:00:00:02",
                )
                pooled = pool.frame(size, flow)
                assert pooled.to_bytes() == reference.to_bytes()
                assert pooled.wire_length == reference.wire_length
                assert pooled.five_tuple() == reference.five_tuple()

    def test_blacklist_override_matches_reference(self):
        pool = FramePool("02:00:00:00:00:01", "02:00:00:00:00:02")
        flow = Workload.enterprise().flows.flows()[0]
        source = blacklisted_source(7)
        reference = build_udp_frame(
            500,
            flow,
            src_mac="02:00:00:00:00:01",
            dst_mac="02:00:00:00:00:02",
            src_ip=str(source),
        )
        pooled = pool.frame(500, flow, src_ip=source)
        assert pooled.to_bytes() == reference.to_bytes()

    def test_templates_are_reused_per_flow(self):
        pool = FramePool("02:00:00:00:00:01", "02:00:00:00:00:02")
        flow = Workload.enterprise().flows.flows()[0]
        pool.frame(128, flow)
        pool.frame(900, flow)
        assert pool.templates_built == 1

    def test_clones_are_independent(self):
        pool = FramePool("02:00:00:00:00:01", "02:00:00:00:00:02")
        flow = Workload.enterprise().flows.flows()[0]
        first = pool.frame(400, flow)
        second = pool.frame(400, flow)
        assert first.packet_id != second.packet_id
        first.ip.src = IPv4Address.from_string("1.2.3.4")
        first.meta["touched"] = True
        assert str(second.ip.src) != "1.2.3.4"
        assert second.meta == {}

    def test_pooled_factory_replays_reference_sequence(self):
        workload = Workload.enterprise(blacklisted_fraction=0.2)
        reference = PacketFactory(
            PktGenConfig(rate_gbps=8.0, workload=workload, seed=11)
        )
        pooled = PacketFactory(
            PktGenConfig(rate_gbps=8.0, workload=workload, seed=11, pooled=True)
        )
        for _ in range(256):
            assert pooled.next_packet().to_bytes() == reference.next_packet().to_bytes()


class TestDecisionCache:
    def _program(self):
        program = BaselineProgram([_binding()])
        program.add_l2_entry("02:00:00:00:00:02", 0)
        program.enable_fast_path()
        return program

    def test_cached_outcome_matches_live_walk(self):
        from repro.packet.packet import Packet

        program = self._program()
        reference = BaselineProgram([_binding()])
        reference.add_l2_entry("02:00:00:00:00:02", 0)
        for port in (0, 1, 2, 0, 1, 2, 0):
            packet = Packet.udp(total_size=200)
            expected = reference.process(Packet.udp(total_size=200), port)
            ctx = program.process(packet, port)
            assert (ctx.egress_port, ctx.dropped) == (
                expected.egress_port,
                expected.dropped,
            )
        # Second round hits the cache; ASIC counters must keep advancing.
        assert program.asic.processed_packets == reference.asic.processed_packets

    def test_control_plane_update_invalidates_cache(self):
        from repro.packet.packet import Packet

        program = self._program()
        ctx = program.process(Packet.udp(total_size=200), 2)
        assert ctx.egress_port == 0
        # New L2 entry steers the sink MAC to port 1; the memoized
        # decision for port 2 must not survive the control-plane write.
        program.add_l2_entry("02:00:00:00:00:02", 1)
        ctx = program.process(Packet.udp(total_size=200), 2)
        assert ctx.egress_port == 1

    def test_payloadpark_is_not_decision_cacheable(self):
        program = PayloadParkProgram(
            PayloadParkConfig(sram_fraction=0.26), bindings=[_binding()]
        )
        program.enable_fast_path()
        assert program.decision_cacheable is False
        assert program._decision_cache == {}

    def test_table_counters_match_between_modes(self):
        from repro.packet.packet import Packet

        fast = self._program()
        slow = BaselineProgram([_binding()])
        slow.add_l2_entry("02:00:00:00:00:02", 0)
        for port in (0, 1, 2) * 5:
            fast.process(Packet.udp(total_size=128), port)
            slow.process(Packet.udp(total_size=128), port)

        def counters(program):
            return [
                (table.name, table.hit_count, table.miss_count)
                for pipe in program.asic.pipes
                for stage in pipe.pipeline.stages
                for table in stage.tables
            ]

        assert counters(fast) == counters(slow)


class TestFirewallFastPath:
    def _firewall(self):
        return Firewall.with_rule_count(20)

    def test_cached_verdicts_match_reference(self):
        from repro.packet.packet import Packet

        reference = self._firewall()
        fast = self._firewall()
        fast.enable_fast_path()
        packets = [
            Packet.udp(src_ip="10.0.0.9", total_size=200),
            Packet.udp(src_ip="192.168.3.4", total_size=200),   # blacklisted
            Packet.udp(src_ip="172.30.5.1", total_size=200),    # rule 5-ish
            Packet.udp(src_ip="10.0.0.9", total_size=200),      # cache hit
        ]
        for packet in packets:
            expected = reference.process(packet)
            got = fast.process(packet)
            assert (got.verdict, got.cycles, got.reason) == (
                expected.verdict,
                expected.cycles,
                expected.reason,
            )

    def test_add_rule_invalidates_cache(self):
        from repro.packet.packet import Packet

        firewall = self._firewall()
        firewall.enable_fast_path()
        packet = Packet.udp(src_ip="10.9.9.9", total_size=128)
        assert firewall.process(packet).forwarded
        firewall.add_rule(FirewallRule.blacklist("10.9.9.9/32"))
        assert not firewall.process(packet).forwarded


class TestCompiledPipelineWalk:
    def test_fast_walk_matches_stage_walk_for_payloadpark(self):
        from repro.packet.packet import Packet

        def run(fast):
            program = PayloadParkProgram(
                PayloadParkConfig(sram_fraction=0.26), bindings=[_binding()]
            )
            if fast:
                program.enable_fast_path()
            outcomes = []
            for index in range(40):
                packet = Packet.udp(total_size=800)
                ctx = program.process(packet, index % 2)
                outcomes.append(
                    (ctx.egress_port, ctx.dropped, packet.wire_length,
                     packet.pp.enb if packet.pp else None)
                )
            counters = [
                (table.name, table.hit_count, table.miss_count)
                for pipe in program.asic.pipes
                for stage in pipe.pipeline.stages
                for table in stage.tables
            ]
            return outcomes, counters

        assert run(fast=True) == run(fast=False)
