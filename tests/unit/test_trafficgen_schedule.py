"""Traffic-generator behavior under time-varying schedules and replay streams."""

import pytest

from repro.netsim.eventloop import EventLoop
from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.netsim.trafficgen_node import TrafficGenNode
from repro.traffic.pktgen import PktGenConfig
from repro.traffic.workload import Workload
from repro.workloads import (
    PcapReplayWorkload,
    PoissonArrivals,
    TraceSchedule,
    TrafficModel,
    get_workload,
)


class _Collector(Node):
    def __init__(self, env, name="collector"):
        super().__init__(env, name)
        self.received = []

    def handle_packet(self, packet, port):
        self.received.append((self.env.now, packet))


def _wired_pktgen(traffic_model=None, rate_gbps=8.0, burst_size=4, seed=42):
    env = EventLoop()
    config = PktGenConfig(
        rate_gbps=rate_gbps,
        workload=Workload.fixed_size(512),
        burst_size=burst_size,
        seed=seed,
    )
    pktgen = TrafficGenNode(env, config, tx_ports=[0], traffic_model=traffic_model)
    sink = _Collector(env)
    Link(env, pktgen, 0, sink, 0, bandwidth_gbps=1000.0)
    return env, pktgen, sink


def _tx_times(pktgen_env_sink, duration_ns):
    env, pktgen, sink = pktgen_env_sink
    pktgen.start(duration_ns)
    env.run_until(duration_ns + 100_000)
    return [packet.meta["tx_ns"] for _t, packet in sink.received]


class TestConstantPathUnchanged:
    def test_no_model_matches_legacy_pacing(self):
        times = _tx_times(_wired_pktgen(), duration_ns=200_000)
        assert times, "constant path must emit packets"
        # Bursts of 4 x 512B at 8 Gbps: one burst every 2048 ns.
        bursts = sorted(set(times))
        gaps = [b - a for a, b in zip(bursts, bursts[1:])]
        assert all(gap == 2048 for gap in gaps)


class TestScheduledGeneration:
    def test_ramp_changes_gaps_mid_run(self):
        # 2 Gbps for the first 100 us, then ramps to 8 Gbps: inter-burst
        # gaps in the late window must be ~4x tighter than early ones.
        schedule = TraceSchedule.steps([(100_000, 2.0), (100_000, 8.0)])
        env, pktgen, sink = _wired_pktgen(TrafficModel(schedule=schedule))
        times = _tx_times((env, pktgen, sink), duration_ns=200_000)
        early = sorted({t for t in times if t < 90_000})
        late = sorted({t for t in times if t >= 110_000})
        early_gap = (early[-1] - early[0]) / (len(early) - 1)
        late_gap = (late[-1] - late[0]) / (len(late) - 1)
        assert early_gap == pytest.approx(4 * late_gap, rel=0.10)

    def test_zero_rate_phase_emits_no_packets(self):
        schedule = TraceSchedule.steps([(50_000, 8.0), (100_000, 0.0), (50_000, 8.0)])
        env, pktgen, sink = _wired_pktgen(TrafficModel(schedule=schedule))
        times = _tx_times((env, pktgen, sink), duration_ns=200_000)
        silent = [t for t in times if 50_000 <= t < 150_000]
        assert not silent
        assert any(t < 50_000 for t in times)
        assert any(t >= 150_000 for t in times)

    def test_run_ending_inside_silent_phase_stops_cleanly(self):
        schedule = TraceSchedule.steps([(20_000, 8.0), (1_000_000, 0.0)])
        env, pktgen, sink = _wired_pktgen(TrafficModel(schedule=schedule))
        times = _tx_times((env, pktgen, sink), duration_ns=100_000)
        assert all(t < 20_000 for t in times)
        assert env.pending_events == 0

    def test_ramp_from_zero_is_not_starved(self):
        # Regression: the pacer used to quote the instantaneous (~zero)
        # rate at the foot of the ramp and sleep ~forever; integral
        # pacing emits the full offered volume (~100 kB here).
        schedule = TraceSchedule.ramp(0.0, 8.0, 200_000)
        env, pktgen, sink = _wired_pktgen(TrafficModel(schedule=schedule))
        times = _tx_times((env, pktgen, sink), duration_ns=200_000)
        assert len(times) >= 150  # the starved pacer managed a handful

    def test_schedule_starting_silent_waits_for_first_active_phase(self):
        schedule = TraceSchedule.steps([(50_000, 0.0), (150_000, 8.0)])
        env, pktgen, sink = _wired_pktgen(TrafficModel(schedule=schedule))
        times = _tx_times((env, pktgen, sink), duration_ns=200_000)
        assert times
        assert min(times) >= 50_000

    def test_repeating_schedule_with_leading_silence(self):
        schedule = TraceSchedule.steps([(50_000, 0.0), (50_000, 8.0)], repeat=True)
        env, pktgen, sink = _wired_pktgen(TrafficModel(schedule=schedule))
        times = _tx_times((env, pktgen, sink), duration_ns=200_000)
        assert times
        # Every emission falls inside an active half-cycle.
        assert all(t % 100_000 >= 50_000 for t in times)

    def test_nonrepeating_schedule_draining_to_zero_stops_cleanly(self):
        # The offered load runs dry mid-run: the pacer must halt rather
        # than schedule an infinitely-deferred burst.
        schedule = TraceSchedule.steps([(30_000, 8.0), (170_000, 0.0)])
        env, pktgen, sink = _wired_pktgen(TrafficModel(schedule=schedule))
        times = _tx_times((env, pktgen, sink), duration_ns=200_000)
        assert times
        assert max(times) < 30_000
        assert env.pending_events == 0

    def test_current_rate_tracks_schedule(self):
        schedule = TraceSchedule.ramp(2.0, 12.0, 100_000)
        env, pktgen, _sink = _wired_pktgen(TrafficModel(schedule=schedule))
        pktgen.start(100_000)
        env.run_until(50_000)
        assert pktgen.current_rate_gbps() == pytest.approx(7.0, rel=0.05)


class TestArrivalPerturbation:
    def test_poisson_gaps_are_irregular_but_mean_preserving(self):
        env, pktgen, sink = _wired_pktgen(TrafficModel(arrivals=PoissonArrivals()))
        times = _tx_times((env, pktgen, sink), duration_ns=2_000_000)
        bursts = sorted(set(times))
        gaps = [b - a for a, b in zip(bursts, bursts[1:])]
        assert len(set(gaps)) > 10  # jittered, not the single legacy gap
        mean_gap = sum(gaps) / len(gaps)
        assert mean_gap == pytest.approx(2048, rel=0.15)


class TestSeedDeterminism:
    def _frames(self, seed):
        spec = get_workload("bursty-mmpp")
        model = spec.traffic_model(8.0)
        env, pktgen, sink = _wired_pktgen(model, seed=seed)
        pktgen.start(100_000)
        env.run_until(200_000)
        return [(t, p.to_bytes()) for t, p in sink.received]

    def test_same_seed_byte_identical_trace(self):
        assert self._frames(9) == self._frames(9)

    def test_different_seed_differs(self):
        assert self._frames(9) != self._frames(10)


class TestStreamReplay:
    def test_replays_captured_spacing_and_loops(self):
        spec = PcapReplayWorkload.synthetic(packet_count=16, seed=2, rate_gbps=8.0)
        model = spec.traffic_model(8.0)
        env, pktgen, sink = _wired_pktgen(model)
        pktgen.start(2_000_000)
        env.run_until(2_100_000)
        assert pktgen.packets_sent > 16  # looped at least once
        sizes = [p.wire_length for _t, p in sink.received[:16]]
        assert sizes == [len(r.data) for r in spec.records]

    def test_stream_stops_at_duration(self):
        spec = PcapReplayWorkload.synthetic(packet_count=16, seed=2, rate_gbps=8.0)
        env, pktgen, sink = _wired_pktgen(spec.traffic_model(8.0))
        pktgen.start(10_000)
        env.run_until(1_000_000)
        assert all(p.meta["tx_ns"] < 10_000 for _t, p in sink.received)

    def test_non_looping_stream_plays_once(self):
        spec = PcapReplayWorkload.synthetic(packet_count=16, seed=2, rate_gbps=8.0)
        model = spec.traffic_model(8.0)
        model.loop_stream = False
        env, pktgen, sink = _wired_pktgen(model)
        pktgen.start(10_000_000)
        env.run_until(11_000_000)
        assert pktgen.packets_sent == 16
