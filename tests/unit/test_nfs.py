"""Unit tests for the network functions (firewall, NAT, Maglev LB, etc.)."""

import pytest

from repro.nf.base import NfVerdict
from repro.nf.chain import NfChain
from repro.nf.firewall import Firewall, FirewallRule
from repro.nf.loadbalancer import Backend, MaglevLoadBalancer, next_prime
from repro.nf.macswap import MacSwapper
from repro.nf.nat import Nat
from repro.nf.synthetic import SyntheticNf
from repro.packet.ipv4 import IPv4Address
from repro.packet.packet import Packet


def _packet(src_ip="10.1.0.1", dst_ip="10.2.0.1", src_port=1000, dst_port=80, size=256):
    return Packet.udp(
        src_ip=src_ip, dst_ip=dst_ip, src_port=src_port, dst_port=dst_port, total_size=size
    )


class TestFirewall:
    def test_allows_unlisted_traffic(self):
        firewall = Firewall(rules=[FirewallRule.blacklist("192.168.0.0/16")])
        result = firewall(_packet(src_ip="10.1.0.1"))
        assert result.forwarded

    def test_drops_blacklisted_source(self):
        firewall = Firewall(rules=[FirewallRule.blacklist("192.168.0.0/16")])
        result = firewall(_packet(src_ip="192.168.5.5"))
        assert result.verdict is NfVerdict.DROP
        assert firewall.packets_dropped == 1

    def test_rule_with_port_qualifier(self):
        rule = FirewallRule(
            network=IPv4Address.from_string("10.1.0.0"), prefix_len=16, dst_port=443
        )
        firewall = Firewall(rules=[rule])
        assert firewall(_packet(dst_port=80)).forwarded
        assert not firewall(_packet(dst_port=443)).forwarded

    def test_cost_grows_with_rule_count(self):
        small = Firewall.with_rule_count(1)
        large = Firewall.with_rule_count(20)
        assert large(_packet()).cycles > small(_packet()).cycles

    def test_with_rule_count_builds_requested_rules(self):
        firewall = Firewall.with_rule_count(20)
        assert len(firewall.rules) == 20


class TestNat:
    def test_rewrites_source_address_and_port(self):
        nat = Nat(external_ip="203.0.113.1")
        packet = _packet(src_ip="10.1.0.1", src_port=5555)
        result = nat(packet)
        assert result.forwarded
        assert str(packet.ip.src) == "203.0.113.1"
        assert packet.l4.src_port != 5555

    def test_same_flow_keeps_binding(self):
        nat = Nat()
        first = _packet(src_ip="10.1.0.9", src_port=1234)
        second = _packet(src_ip="10.1.0.9", src_port=1234)
        nat(first)
        nat(second)
        assert first.l4.src_port == second.l4.src_port
        assert nat.active_bindings == 1

    def test_distinct_flows_get_distinct_ports(self):
        nat = Nat()
        first = _packet(src_port=1000)
        second = _packet(src_port=1001)
        nat(first)
        nat(second)
        assert first.l4.src_port != second.l4.src_port

    def test_reverse_translation(self):
        nat = Nat(external_ip="203.0.113.1")
        outbound = _packet(src_ip="10.1.0.7", src_port=4242)
        nat(outbound)
        reply = _packet(
            src_ip=str(outbound.ip.dst),
            dst_ip="203.0.113.1",
            src_port=outbound.l4.dst_port,
            dst_port=outbound.l4.src_port,
        )
        result = nat(reply)
        assert result.forwarded
        assert str(reply.ip.dst) == "10.1.0.7"
        assert reply.l4.dst_port == 4242

    def test_reverse_without_binding_dropped(self):
        nat = Nat(external_ip="203.0.113.1")
        stray = _packet(dst_ip="203.0.113.1", dst_port=30000)
        assert not nat(stray).forwarded


class TestMaglev:
    def test_next_prime(self):
        assert next_prime(250) == 251
        assert next_prime(2) == 2
        assert next_prime(14) == 17

    def test_requires_backends(self):
        with pytest.raises(ValueError):
            MaglevLoadBalancer(backends=[])

    def test_table_is_fully_populated_and_balanced(self):
        lb = MaglevLoadBalancer.with_backend_count(5, table_size=101)
        assert all(entry >= 0 for entry in lb.lookup_table)
        assert lb.load_imbalance() < 1.3

    def test_flow_consistency(self):
        lb = MaglevLoadBalancer.with_backend_count(4)
        packet = _packet(src_port=7777)
        flow = packet.five_tuple()
        assert lb.backend_for(flow) == lb.backend_for(flow)

    def test_rewrites_destination_to_backend(self):
        lb = MaglevLoadBalancer.with_backend_count(3)
        packet = _packet()
        lb(packet)
        assert str(packet.ip.dst).startswith("10.100.0.")

    def test_most_flows_stable_when_backend_removed(self):
        backends = [Backend.from_string(f"b{i}", f"10.100.0.{i + 1}") for i in range(5)]
        full = MaglevLoadBalancer(backends=backends, table_size=211)
        reduced = MaglevLoadBalancer(backends=backends[:-1], table_size=211)
        flows = [_packet(src_port=p).five_tuple() for p in range(1000, 1200)]
        moved = 0
        for flow in flows:
            before = full.backend_for(flow)
            after = reduced.backend_for(flow)
            if before.name != backends[-1].name and before.name != after.name:
                moved += 1
        assert moved / len(flows) < 0.35


class TestMacSwapAndSynthetic:
    def test_macswap_swaps(self):
        packet = _packet()
        src, dst = packet.eth.src, packet.eth.dst
        MacSwapper()(packet)
        assert packet.eth.src == dst and packet.eth.dst == src

    def test_synthetic_cycle_budgets(self):
        assert SyntheticNf.light()(_packet()).cycles == 50
        assert SyntheticNf.medium()(_packet()).cycles == 300
        assert SyntheticNf.heavy()(_packet()).cycles == 570

    def test_synthetic_rejects_nonpositive_cycles(self):
        with pytest.raises(ValueError):
            SyntheticNf(0)


class TestNfChain:
    def test_chain_processes_in_order_and_sums_cycles(self):
        chain = NfChain([Firewall.with_rule_count(1), Nat()])
        packet = _packet()
        result = chain.process(packet)
        assert result.forwarded
        assert result.cycles > 0
        assert chain.packets_out == 1

    def test_drop_stops_chain(self):
        firewall = Firewall(rules=[FirewallRule.blacklist("10.1.0.0/16")])
        nat = Nat()
        chain = NfChain([firewall, nat])
        result = chain.process(_packet(src_ip="10.1.0.5"))
        assert not result.forwarded
        assert nat.packets_seen == 0
        assert chain.packets_dropped == 1

    def test_requires_at_least_one_nf(self):
        with pytest.raises(ValueError):
            NfChain([])

    def test_stage_cycle_estimates_one_per_nf(self):
        chain = NfChain([Firewall.with_rule_count(20), Nat(), MacSwapper()])
        estimates = chain.stage_cycle_estimates()
        assert len(estimates) == 3
        assert all(value > 0 for value in estimates)

    def test_stage_cycle_estimates_override_validated(self):
        chain = NfChain([MacSwapper()])
        with pytest.raises(ValueError):
            chain.stage_cycle_estimates(sample_packet_cycles=[1, 2])

    def test_reset_counters(self):
        chain = NfChain([MacSwapper()])
        chain.process(_packet())
        chain.reset_counters()
        assert chain.packets_in == 0
        assert chain.nfs[0].packets_seen == 0
