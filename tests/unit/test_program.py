"""Unit tests for the PayloadPark and baseline switch programs."""

import pytest

from repro.core.config import NfServerBinding, PayloadParkConfig
from repro.core.header import OP_EXPLICIT_DROP
from repro.core.program import BaselineProgram, PayloadParkProgram
from repro.packet.packet import ETHERNET_UDP_HEADER_BYTES, Packet


def _binding(name="srv0", base=0):
    return NfServerBinding(
        name=name,
        ingress_ports=(base, base + 1),
        nf_port=base + 2,
        default_egress_port=base,
    )


def _program(**config_kwargs):
    config = PayloadParkConfig(**config_kwargs)
    return PayloadParkProgram(config, bindings=[_binding()])


class TestBaselineProgram:
    def test_forwards_traffic_to_nf_port(self):
        program = BaselineProgram([_binding()])
        packet = Packet.udp(total_size=500)
        ctx = program.process(packet, ingress_port=0)
        assert ctx.egress_port == 2
        assert packet.wire_length == 500  # untouched

    def test_forwards_nf_traffic_to_default_egress(self):
        program = BaselineProgram([_binding()])
        ctx = program.process(Packet.udp(total_size=500), ingress_port=2)
        assert ctx.egress_port == 0

    def test_l2_entry_overrides_default_egress(self):
        program = BaselineProgram([_binding()])
        program.add_l2_entry("02:00:00:00:00:02", 1)
        ctx = program.process(Packet.udp(total_size=500), ingress_port=2)
        assert ctx.egress_port == 1

    def test_requires_at_least_one_binding(self):
        with pytest.raises(ValueError):
            BaselineProgram([])


class TestBindingValidation:
    def test_ports_must_share_pipe(self):
        bad = NfServerBinding(
            name="bad", ingress_ports=(0, 1), nf_port=20, default_egress_port=0
        )
        with pytest.raises(ValueError):
            BaselineProgram([bad])

    def test_port_reuse_across_bindings_rejected(self):
        first = _binding("a", base=0)
        overlapping = NfServerBinding(
            name="b", ingress_ports=(2, 3), nf_port=5, default_egress_port=2
        )
        with pytest.raises(ValueError):
            BaselineProgram([first, overlapping])


class TestSplitMergeRoundTrip:
    def test_split_truncates_and_merge_restores(self):
        program = _program()
        packet = Packet.udp(total_size=512)
        original = packet.to_bytes()

        split_ctx = program.process(packet, ingress_port=0)
        assert split_ctx.egress_port == 2
        assert packet.pp is not None and packet.pp.enb == 1
        assert packet.wire_length == 512 - 160 + 7

        merge_ctx = program.process(packet, ingress_port=2)
        assert merge_ctx.egress_port == 0
        assert packet.pp is None
        assert packet.to_bytes() == original
        counters = program.counters_for()
        assert counters.splits == 1 and counters.merges == 1
        assert program.lookup_table().occupancy() == 0

    def test_small_payload_not_split_but_gets_header(self):
        program = _program()
        packet = Packet.udp(total_size=128)  # payload 86 < 160
        program.process(packet, ingress_port=0)
        assert packet.pp is not None and packet.pp.enb == 0
        assert packet.wire_length == 128 + 7
        assert program.counters_for().split_disabled_small_payload == 1

        program.process(packet, ingress_port=2)
        assert packet.pp is None
        assert packet.wire_length == 128
        assert program.counters_for().merge_enb_zero == 1

    def test_split_disabled_when_master_switch_off(self):
        program = _program(split_enabled=False)
        packet = Packet.udp(total_size=512)
        program.process(packet, ingress_port=0)
        assert packet.pp is not None and packet.pp.enb == 0
        assert program.counters_for().splits == 0

    def test_header_survives_nf_header_rewrites(self):
        program = _program()
        packet = Packet.udp(total_size=512)
        payload_before = bytes(packet.payload)
        program.process(packet, ingress_port=0)
        # The NF rewrites addresses and ports; the tag must still find the payload.
        packet.eth.swap_addresses()
        packet.ip.ttl -= 1
        packet.l4.src_port = 9999
        program.process(packet, ingress_port=2)
        assert packet.payload == payload_before

    def test_full_table_falls_back_to_disabled_split(self):
        # With a conservative expiry threshold, wrapping back onto occupied
        # slots decrements the threshold instead of evicting, so the third
        # packet cannot be parked and falls back to non-PayloadPark mode.
        program = _program(table_entries=2, expiry_threshold=2)
        packets = [Packet.udp(total_size=512) for _ in range(3)]
        for packet in packets:
            program.process(packet, ingress_port=0)
        counters = program.counters_for()
        assert counters.splits == 2
        assert counters.split_disabled_table_occupied == 1
        assert counters.evictions == 0
        assert packets[2].pp.enb == 0

    def test_eviction_and_premature_eviction_detection(self):
        program = _program(table_entries=1, expiry_threshold=1)
        first = Packet.udp(total_size=512)
        second = Packet.udp(total_size=512)
        program.process(first, ingress_port=0)
        # The second packet wraps the 1-entry table, evicting the first payload.
        program.process(second, ingress_port=0)
        assert program.counters_for().evictions == 1
        # The first packet now returns: its payload is gone.
        ctx = program.process(first, ingress_port=2)
        assert ctx.dropped
        assert program.counters_for().premature_evictions == 1
        # The second packet still merges fine.
        ctx = program.process(second, ingress_port=2)
        assert not ctx.dropped
        assert program.counters_for().merges == 1

    def test_corrupted_tag_is_dropped(self):
        program = _program()
        packet = Packet.udp(total_size=512)
        program.process(packet, ingress_port=0)
        packet.pp.clk ^= 0x1  # corrupt the tag without fixing the CRC
        ctx = program.process(packet, ingress_port=2)
        assert ctx.dropped
        assert program.counters_for().tag_validation_failures == 1

    def test_explicit_drop_reclaims_slot_without_forwarding(self):
        program = _program(enable_explicit_drops=True)
        packet = Packet.udp(total_size=512)
        program.process(packet, ingress_port=0)
        assert program.lookup_table().occupancy() == 1
        # The NF framework decides to drop: truncate and set the opcode.
        packet.park_leading_payload(packet.payload_length)
        packet.pp.op = OP_EXPLICIT_DROP
        ctx = program.process(packet, ingress_port=2)
        assert ctx.dropped
        assert program.counters_for().explicit_drops == 1
        assert program.lookup_table().occupancy() == 0


class TestRecirculation:
    def test_recirculation_parks_384_bytes(self):
        config = PayloadParkConfig.with_recirculation()
        program = PayloadParkProgram(config, bindings=[_binding()])
        packet = Packet.udp(total_size=1024)
        original = packet.to_bytes()

        split_ctx = program.process(packet, ingress_port=0)
        assert split_ctx.recirculations == 1
        assert packet.wire_length == 1024 - 384 + 7

        merge_ctx = program.process(packet, ingress_port=2)
        assert merge_ctx.recirculations == 1
        assert packet.to_bytes() == original

    def test_recirculation_latency_reported(self):
        config = PayloadParkConfig.with_recirculation()
        program = PayloadParkProgram(config, bindings=[_binding()])
        packet = Packet.udp(total_size=1024)
        ctx = program.process(packet, ingress_port=0)
        assert program.extra_latency_ns(ctx) > 0


class TestMultiBindingAndState:
    def test_memory_sliced_between_bindings_on_same_pipe(self):
        bindings = [_binding("a", base=0), _binding("b", base=4)]
        program = PayloadParkProgram(PayloadParkConfig(sram_fraction=0.4), bindings=bindings)
        solo = PayloadParkProgram(PayloadParkConfig(sram_fraction=0.4), bindings=[_binding()])
        assert program.lookup_tables["a"].entries == solo.lookup_table().entries // 2
        assert program.lookup_tables["a"].entries == program.lookup_tables["b"].entries

    def test_bindings_have_isolated_state(self):
        bindings = [_binding("a", base=0), _binding("b", base=4)]
        program = PayloadParkProgram(PayloadParkConfig(), bindings=bindings)
        packet = Packet.udp(total_size=512)
        program.process(packet, ingress_port=0)
        assert program.counters_for("a").splits == 1
        assert program.counters_for("b").splits == 0
        assert program.lookup_tables["a"].occupancy() == 1
        assert program.lookup_tables["b"].occupancy() == 0

    def test_total_parked_capacity(self):
        program = _program(table_entries=10)
        assert program.total_parked_bytes_capacity() == 10 * 160

    def test_reset_state_clears_everything(self):
        program = _program()
        packet = Packet.udp(total_size=512)
        program.process(packet, ingress_port=0)
        program.reset_state()
        assert program.counters_for().splits == 0
        assert program.lookup_table().occupancy() == 0

    def test_lookup_table_requires_name_with_multiple_bindings(self):
        bindings = [_binding("a", base=0), _binding("b", base=4)]
        program = PayloadParkProgram(PayloadParkConfig(), bindings=bindings)
        with pytest.raises(ValueError):
            program.lookup_table()


class TestResourceReport:
    def test_sram_fraction_reflected_in_report(self):
        low = _program(sram_fraction=0.10).resource_report()
        high = _program(sram_fraction=0.30).resource_report()
        assert high.sram_peak_percent > low.sram_peak_percent

    def test_phv_within_budget(self):
        report = _program().resource_report()
        assert 0 < report.phv_percent <= 100
