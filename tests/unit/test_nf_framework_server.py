"""Unit tests for the NF framework profiles and the server cost model."""

import pytest

from repro.nf.chain import NfChain
from repro.nf.firewall import Firewall
from repro.nf.framework import NETBRICKS, OPENNETVM, NfFramework
from repro.nf.macswap import MacSwapper
from repro.nf.nat import Nat
from repro.nf.server import NfServerConfig, NfServerModel
from repro.nf.synthetic import SyntheticNf
from repro.packet.packet import Packet


class TestFramework:
    def test_chain_overhead_grows_with_length(self):
        assert OPENNETVM.chain_overhead_cycles(3) > OPENNETVM.chain_overhead_cycles(1)

    def test_chain_overhead_rejects_empty_chain(self):
        with pytest.raises(ValueError):
            OPENNETVM.chain_overhead_cycles(0)

    def test_netbricks_is_cheaper_per_hop(self):
        assert NETBRICKS.per_nf_overhead_cycles < OPENNETVM.per_nf_overhead_cycles
        assert not NETBRICKS.isolated_nfs and OPENNETVM.isolated_nfs

    def test_with_explicit_drop_flag(self):
        modified = OPENNETVM.with_explicit_drop()
        assert modified.supports_explicit_drop
        assert not OPENNETVM.supports_explicit_drop  # original untouched
        assert "ExplicitDrop" in modified.name


class TestNfServerModel:
    def _model(self, chain=None, **config_kwargs):
        chain = chain or NfChain([Firewall.with_rule_count(1), Nat()])
        return NfServerModel(chain, NfServerConfig(**config_kwargs))

    def test_stage_count_matches_chain_plus_rx_tx(self):
        model = self._model()
        assert len(model.stage_service_times_ns()) == 2 + 2

    def test_bottleneck_is_max_stage(self):
        model = self._model()
        stages = model.stage_service_times_ns()
        assert model.bottleneck_service_ns() == pytest.approx(max(stages))

    def test_heavier_nf_lowers_throughput(self):
        light = NfServerModel(NfChain([SyntheticNf.light()]), NfServerConfig())
        heavy = NfServerModel(NfChain([SyntheticNf.heavy()]), NfServerConfig())
        assert heavy.max_throughput_pps() < light.max_throughput_pps()

    def test_more_instances_raise_throughput(self):
        chain = NfChain([SyntheticNf.heavy()])
        one = NfServerModel(chain, NfServerConfig(nf_instances=1))
        two = NfServerModel(chain, NfServerConfig(nf_instances=2))
        assert two.max_throughput_pps() > one.max_throughput_pps()

    def test_pipeline_latency_exceeds_sum_of_stages(self):
        model = self._model()
        assert model.pipeline_latency_ns() > sum(model.stage_service_times_ns())

    def test_buffer_capacity_scales_with_chain_length(self):
        short = NfServerModel(NfChain([MacSwapper()]), NfServerConfig())
        long = self._model()
        assert long.buffer_capacity_packets() > short.buffer_capacity_packets()

    def test_process_packet_runs_chain(self):
        model = self._model()
        packet = Packet.udp(total_size=300, src_ip="10.3.0.1")
        result = model.process_packet(packet)
        assert result.forwarded
        assert str(packet.ip.src) != "10.3.0.1"  # NAT rewrote it

    def test_explicit_drop_requires_framework_support(self):
        model = NfServerModel(
            NfChain([MacSwapper()]),
            NfServerConfig(explicit_drop=True, framework=OPENNETVM),
        )
        # The constructor upgrades the framework automatically.
        assert model.wants_explicit_drop

    def test_faster_clock_reduces_service_time(self):
        slow = self._model(cpu_ghz=2.0)
        fast = self._model(cpu_ghz=3.0)
        assert fast.bottleneck_service_ns() < slow.bottleneck_service_ns()
