"""Unit tests for 5-tuple flows and the PCAP reader/writer."""

import pytest

from repro.packet.flows import FiveTuple, FlowGenerator
from repro.packet.ipv4 import PROTO_UDP, IPv4Address
from repro.packet.packet import Packet
from repro.packet.pcap import PcapReader, read_pcap, write_pcap


def _tuple(src="10.0.0.1", dst="10.0.0.2", sport=1000, dport=2000):
    return FiveTuple(
        src_ip=IPv4Address.from_string(src),
        dst_ip=IPv4Address.from_string(dst),
        protocol=PROTO_UDP,
        src_port=sport,
        dst_port=dport,
    )


class TestFiveTuple:
    def test_reversed_swaps_endpoints(self):
        flow = _tuple()
        rev = flow.reversed()
        assert rev.src_ip == flow.dst_ip and rev.dst_port == flow.src_port
        assert rev.reversed() == flow

    def test_stable_hash_is_deterministic_and_spreads(self):
        flow = _tuple()
        assert flow.stable_hash() == _tuple().stable_hash()
        other = _tuple(sport=1001)
        assert flow.stable_hash() != other.stable_hash()

    def test_str_contains_ports(self):
        assert "1000" in str(_tuple())


class TestFlowGenerator:
    def test_generates_requested_count(self):
        generator = FlowGenerator(flow_count=100)
        flows = generator.flows()
        assert len(flows) == 100
        assert len(set(flows)) == 100

    def test_flow_index_wraps(self):
        generator = FlowGenerator(flow_count=10)
        assert generator.flow(3) == generator.flow(13)

    def test_round_robin_cycles(self):
        generator = FlowGenerator(flow_count=4)
        iterator = generator.round_robin()
        first_cycle = [next(iterator) for _ in range(4)]
        second_cycle = [next(iterator) for _ in range(4)]
        assert first_cycle == second_cycle

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            FlowGenerator(flow_count=0)


class TestPcap:
    def test_write_and_read_round_trip(self, tmp_path):
        path = tmp_path / "sample.pcap"
        frames = [(0.001 * i, Packet.udp(total_size=100 + i).to_bytes()) for i in range(5)]
        assert write_pcap(path, frames) == 5
        records = read_pcap(path)
        assert len(records) == 5
        for (timestamp, data), record in zip(frames, records):
            assert record.data == data
            assert record.timestamp == pytest.approx(timestamp, abs=1e-6)

    def test_reader_rejects_non_pcap(self, tmp_path):
        path = tmp_path / "garbage.pcap"
        path.write_bytes(b"not a pcap file at all........")
        with pytest.raises(ValueError):
            PcapReader(path)

    def test_reader_exposes_linktype(self, tmp_path):
        path = tmp_path / "meta.pcap"
        write_pcap(path, [(0.0, b"\x00" * 60)])
        with PcapReader(path) as reader:
            assert reader.linktype == 1
            assert reader.snaplen >= 60
