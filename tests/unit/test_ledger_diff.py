"""Unit tests for the cross-run ledger, bench trend, and obs diff."""

import json

import pytest

from repro.obs.diff import diff_metrics, format_diff, load_metrics_export
from repro.obs.schema import SchemaError
from repro.orchestrator.ledger import (
    RunLedger,
    detect_regression,
    dotted_get,
    format_trend,
)
from repro.orchestrator.store import ResultStore


def _history(tmp_path, values, kind="fastpath"):
    path = tmp_path / "bench_history.jsonl"
    with path.open("w") as handle:
        for value in values:
            handle.write(json.dumps(
                {"kind": kind, "fast": {"packets_per_sec": value}}
            ) + "\n")
    return path


def _metrics_export(counters=None, gauges=None, series=None):
    return {
        "schema": "repro.metrics/v1",
        "sample_interval_ns": 50_000,
        "samples_taken": 10,
        "counters": counters or {},
        "gauges": gauges or {},
        "histograms": {},
        "series": series or {},
    }


class TestDetectRegression:
    def test_flags_a_sustained_2x_drop(self):
        values = [100.0, 102.0, 98.0, 101.0, 50.0, 49.0, 51.0]
        result = detect_regression(values, window=3, threshold=0.25)
        assert result["regressed"]
        assert result["baseline"] == pytest.approx(100.5)
        assert "below" in result["reason"]

    def test_quiet_on_flat_history_with_noise(self):
        values = [100.0, 104.0, 97.0, 101.0, 95.0, 103.0, 99.0]
        assert not detect_regression(values, window=3, threshold=0.25)["regressed"]

    def test_single_bad_sample_does_not_flag(self):
        # One noisy run in the window is not a sustained regression.
        values = [100.0, 100.0, 100.0, 100.0, 40.0, 100.0, 100.0]
        assert not detect_regression(values, window=3, threshold=0.25)["regressed"]

    def test_insufficient_history_is_quiet(self):
        result = detect_regression([100.0, 50.0], window=3)
        assert not result["regressed"]
        assert "insufficient history" in result["reason"]

    def test_exact_window_length_history_uses_single_sample_baseline(self):
        # window + 1 samples is the smallest history that can be judged:
        # the baseline is the lone leading sample, and a sustained drop
        # below it must flag without any mis-indexing.
        result = detect_regression([100.0, 40.0, 41.0, 42.0], window=3)
        assert result["samples"] == 4
        assert result["baseline"] == 100.0
        assert result["regressed"]
        # Same length, flat values: quiet.
        flat = detect_regression([100.0, 99.0, 101.0, 100.0], window=3)
        assert not flat["regressed"]

    def test_cli_trend_exits_zero_quietly_on_short_history(self, tmp_path, capsys):
        # `repro bench trend` over a history shorter than the sliding
        # window must exit 0 and say why, never flag or traceback.
        from repro.cli import main

        path = _history(tmp_path, [100.0, 50.0])
        assert main(["bench", "trend", "--history", str(path)]) == 0
        out = capsys.readouterr().out
        assert "insufficient history" in out

        empty = tmp_path / "empty_history.jsonl"
        empty.write_text("")
        assert main(["bench", "trend", "--history", str(empty)]) == 0

        missing = tmp_path / "does_not_exist.jsonl"
        assert main(["bench", "trend", "--history", str(missing)]) == 0

    def test_cli_trend_exact_window_length_flags_and_stays_quiet(self, tmp_path):
        from repro.cli import main

        regressed = _history(tmp_path, [100.0, 40.0, 41.0, 42.0])
        assert main(["bench", "trend", "--history", str(regressed)]) == 3
        flat = _history(tmp_path, [100.0, 99.0, 101.0, 100.0])
        assert main(["bench", "trend", "--history", str(flat)]) == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="window"):
            detect_regression([1.0], window=0)
        with pytest.raises(ValueError, match="threshold"):
            detect_regression([1.0], threshold=1.5)

    def test_format_trend_mentions_regression(self):
        result = detect_regression([100.0] * 4 + [10.0] * 3, window=3)
        text = format_trend(result, "fastpath", "fast.packets_per_sec")
        assert "REGRESSION" in text
        quiet = detect_regression([100.0] * 7, window=3)
        assert "ok" in format_trend(quiet, "fastpath", "fast.packets_per_sec")


class TestRunLedger:
    def test_bench_series_extracts_dotted_metric_in_order(self, tmp_path):
        history = _history(tmp_path, [10.0, 20.0, 30.0])
        ledger = RunLedger(history_path=history)
        assert ledger.bench_series() == [10.0, 20.0, 30.0]

    def test_bench_entries_filter_by_kind_and_skip_junk(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text(
            json.dumps({"kind": "fastpath", "fast": {"packets_per_sec": 1.0}})
            + "\nnot json\n"
            + json.dumps({"kind": "obs_overhead", "disabled_over_off": 0.99})
            + "\n"
        )
        ledger = RunLedger(history_path=path)
        assert len(ledger.bench_entries()) == 2
        assert len(ledger.bench_entries(kind="fastpath")) == 1

    def test_missing_history_is_empty(self, tmp_path):
        ledger = RunLedger(history_path=tmp_path / "absent.jsonl")
        assert ledger.bench_entries() == []
        assert ledger.bench_series() == []

    def test_campaign_runs_skip_events_sidecars(self, tmp_path):
        store = ResultStore(tmp_path / "grid.jsonl")
        store.append({"spec_hash": "a", "status": "ok"})
        store.append({"spec_hash": "b", "status": "violation",
                      "violations": [{"check": "c", "message": "m"}]})
        (tmp_path / "grid.events.jsonl").write_text("{}\n")
        rows = RunLedger(results_root=tmp_path).campaign_runs()
        assert len(rows) == 1
        assert rows[0]["campaign"] == "grid"
        assert rows[0]["cells"] == 2
        assert rows[0]["violation"] == 1
        assert rows[0]["violations_total"] == 1

    def test_sharded_store_is_one_campaign_entry(self, tmp_path):
        sharded = ResultStore(tmp_path / "grid.jsonl", shards=3)
        hashes = [f"{value:016x}" for value in range(6)]
        for spec_hash in hashes:
            sharded.append({"spec_hash": spec_hash, "status": "ok"})
        sharded.append({"spec_hash": hashes[0], "status": "error"})  # stale retry
        other = ResultStore(tmp_path / "other.jsonl")
        other.append({"spec_hash": "zz", "status": "exhausted", "attempts": 3})
        ledger = RunLedger(results_root=tmp_path)
        assert [path.name for path in ledger.store_paths()] == [
            "grid.jsonl", "other.jsonl",
        ]
        rows = ledger.campaign_runs()
        assert len(rows) == 2
        grid = next(row for row in rows if row["campaign"] == "grid")
        assert grid["cells"] == 6
        assert grid["ok"] == 6  # ok-wins over the later failed retry
        assert next(r for r in rows if r["campaign"] == "other")["exhausted"] == 1

    def test_dotted_get(self):
        assert dotted_get({"a": {"b": 3}}, "a.b") == 3
        assert dotted_get({"a": {"b": 3}}, "a.c") is None
        assert dotted_get({"a": 1}, "a.b") is None


class TestObsDiff:
    def test_counter_and_gauge_deltas(self):
        a = _metrics_export(counters={"parked": 100}, gauges={"occupancy": 0.5})
        b = _metrics_export(counters={"parked": 150}, gauges={"occupancy": 0.25})
        diff = diff_metrics(a, b)
        assert diff["counters"]["parked"]["delta"] == 50
        assert diff["counters"]["parked"]["percent"] == pytest.approx(50.0)
        assert diff["gauges"]["occupancy"]["percent"] == pytest.approx(-50.0)

    def test_one_sided_metrics_marked(self):
        diff = diff_metrics(
            _metrics_export(counters={"old_only": 1}),
            _metrics_export(counters={"new_only": 2}),
        )
        assert diff["counters"]["old_only"]["b"] is None
        assert diff["counters"]["new_only"]["a"] is None
        text = format_diff(diff)
        assert "new" in text and "gone" in text

    def test_series_compared_on_final_value(self):
        a = _metrics_export(series={"goodput": {
            "kind": "gauge", "points": [[0, 1.0], [1, 2.0]], "dropped_samples": 0}})
        b = _metrics_export(series={"goodput": {
            "kind": "gauge", "points": [[0, 1.0], [1, 4.0]], "dropped_samples": 0}})
        diff = diff_metrics(a, b)
        assert diff["series_last"]["goodput"]["delta"] == pytest.approx(2.0)

    def test_histogram_count_and_mean_deltas(self):
        a = _metrics_export()
        b = _metrics_export()
        a["histograms"]["lat"] = {"bounds": [1], "counts": [2, 0], "count": 2,
                                  "mean": 0.5}
        b["histograms"]["lat"] = {"bounds": [1], "counts": [3, 1], "count": 4,
                                  "mean": 0.75}
        diff = diff_metrics(a, b)
        assert diff["histograms"]["lat"]["count_delta"] == 2
        assert diff["histograms"]["lat"]["mean_delta"] == pytest.approx(0.25)

    def test_format_diff_sorts_biggest_movers_first(self):
        a = _metrics_export(counters={"small": 100, "big": 100})
        b = _metrics_export(counters={"small": 101, "big": 300})
        text = format_diff(diff_metrics(a, b))
        assert text.index("big") < text.index("small")

    def test_empty_diff_renders_placeholder(self):
        assert "no comparable metrics" in format_diff(
            diff_metrics(_metrics_export(), _metrics_export())
        )


class TestLoadMetricsExport:
    def test_loads_file_and_validates(self, tmp_path):
        path = tmp_path / "run.metrics.json"
        path.write_text(json.dumps(_metrics_export(counters={"x": 1})))
        assert load_metrics_export(path)["counters"]["x"] == 1

    def test_directory_with_single_export(self, tmp_path):
        (tmp_path / "a.metrics.json").write_text(json.dumps(_metrics_export()))
        assert load_metrics_export(tmp_path)["schema"] == "repro.metrics/v1"

    def test_directory_without_export_fails(self, tmp_path):
        with pytest.raises(SchemaError, match="no .*metrics.json"):
            load_metrics_export(tmp_path)

    def test_ambiguous_directory_fails(self, tmp_path):
        (tmp_path / "a.metrics.json").write_text(json.dumps(_metrics_export()))
        (tmp_path / "b.metrics.json").write_text(json.dumps(_metrics_export()))
        with pytest.raises(SchemaError, match="ambiguous"):
            load_metrics_export(tmp_path)

    def test_invalid_json_fails(self, tmp_path):
        path = tmp_path / "bad.metrics.json"
        path.write_text("{nope")
        with pytest.raises(SchemaError, match="unreadable"):
            load_metrics_export(path)
