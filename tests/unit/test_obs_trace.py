"""Unit tests for the flight recorder: spans, caps, deterministic exports."""

import json

import pytest

from repro.obs.schema import (
    SchemaError,
    validate_chrome_trace,
    validate_trace_jsonl,
)
from repro.obs.trace import FlightRecorder


class _FakeEnv:
    def __init__(self) -> None:
        self.now = 0


def _recorder(**kwargs) -> FlightRecorder:
    recorder = FlightRecorder(**kwargs)
    recorder.bind_clock(_FakeEnv())
    return recorder


class TestFlightRecorder:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            FlightRecorder(sample_every=0)
        with pytest.raises(ValueError):
            FlightRecorder(max_events=0)

    def test_park_span_lifecycle_evicted(self):
        recorder = _recorder()
        recorder._clock.now = 100
        recorder.payload_parked("srv0", 7, clk=3, pkt_id="gen0#0")
        recorder._clock.now = 900
        recorder.slot_evicted("srv0", 7)
        (span,) = recorder.park_spans()
        assert span["outcome"] == "evicted"
        assert span["start_ns"] == 100 and span["end_ns"] == 900
        assert span["pkt"] == "gen0#0" and span["slot"] == 7
        assert recorder.spans_closed == 1

    @pytest.mark.parametrize(
        "close,outcome",
        [
            (lambda r: r.slot_merged("b", 1), "merged"),
            (lambda r: r.slot_drained("b", 1), "drained"),
            (lambda r: r.slot_released("b", 1, "explicit-drop"), "explicit-drop"),
        ],
    )
    def test_every_close_path_labels_its_outcome(self, close, outcome):
        recorder = _recorder()
        recorder.payload_parked("b", 1, clk=0, pkt_id="p")
        close(recorder)
        assert recorder.park_spans()[0]["outcome"] == outcome

    def test_unsampled_park_opens_no_span(self):
        recorder = _recorder()
        recorder.payload_parked("b", 1, clk=0, pkt_id=None)
        recorder.slot_evicted("b", 1)
        assert recorder.records == []
        assert recorder.spans_closed == 0

    def test_close_without_open_is_a_noop(self):
        recorder = _recorder()
        recorder.slot_evicted("b", 99)
        assert recorder.records == [] and recorder.spans_closed == 0

    def test_finalize_closes_open_spans_deterministically(self):
        recorder = _recorder()
        recorder.payload_parked("b", 5, clk=0, pkt_id="p5")
        recorder.payload_parked("a", 2, clk=0, pkt_id="p2")
        recorder.finalize(1_000)
        spans = recorder.park_spans()
        assert [span["outcome"] for span in spans] == ["open", "open"]
        # Sorted by (binding, slot), independent of park order.
        assert [(span["binding"], span["slot"]) for span in spans] == [("a", 2), ("b", 5)]

    def test_max_events_cap_counts_dropped_records(self):
        recorder = _recorder(max_events=3)
        for index in range(5):
            recorder.packet_generated(f"g#{index}", index, port=0, wire_bytes=64)
        assert len(recorder.records) == 3
        assert recorder.dropped_records == 2
        summary = validate_trace_jsonl(recorder.to_jsonl())
        assert summary["dropped_records"] == 2

    def test_fault_params_filtered_to_scalars(self):
        recorder = _recorder()
        recorder.fault_applied(
            "link_down", 50, 100, {"link": "server", "links": ["a"], "frac": 0.5}
        )
        (fault,) = recorder.fault_windows()
        assert fault["params"] == {"link": "server", "frac": 0.5}

    def test_jsonl_is_byte_deterministic(self):
        def build() -> str:
            recorder = _recorder()
            recorder.packet_generated("g#0", 10, port=1, wire_bytes=1500)
            recorder.payload_parked("srv0", 0, clk=1, pkt_id="g#0")
            recorder._clock.now = 400
            recorder.slot_merged("srv0", 0)
            recorder.packet_delivered("g#0", 500, latency_ns=490)
            recorder.finalize(1_000)
            return recorder.to_jsonl()

        assert build() == build()

    def test_jsonl_layout_header_records_summary(self):
        recorder = _recorder()
        recorder.packet_generated("g#0", 10, port=1, wire_bytes=64)
        recorder.packet_dropped("g#0", 20, where="sw0", reason="no-egress-decision")
        lines = recorder.to_jsonl().splitlines()
        header, summary = json.loads(lines[0]), json.loads(lines[-1])
        assert header["type"] == "header" and header["schema"] == "repro.trace/v1"
        assert summary == {
            "type": "summary", "records": 2, "spans_closed": 0, "dropped_records": 0
        }
        validate_trace_jsonl(recorder.to_jsonl())

    def test_chrome_export_derives_packet_and_park_spans(self):
        recorder = _recorder()
        recorder.packet_generated("g#0", 1_000, port=0, wire_bytes=64)
        recorder.payload_parked("srv0", 3, clk=0, pkt_id="g#0")
        recorder._clock.now = 5_000
        recorder.slot_evicted("srv0", 3)
        recorder.packet_delivered("g#0", 9_000, latency_ns=8_000)
        recorder.fault_applied("link_down", 2_000, 3_000, {"link": "server"})
        chrome = validate_chrome_trace(recorder.to_chrome())
        spans = [ev for ev in chrome["traceEvents"] if ev["ph"] == "X"]
        names = {ev["name"] for ev in spans}
        assert "pkt:deliver" in names
        assert "park[srv0/3]:evicted" in names
        assert "fault:link_down" in names
        pkt_span = next(ev for ev in spans if ev["name"] == "pkt:deliver")
        # Chrome timestamps are microseconds.
        assert pkt_span["ts"] == pytest.approx(1.0)
        assert pkt_span["dur"] == pytest.approx(8.0)

    def test_inflight_packets_render_as_instants_only(self):
        recorder = _recorder()
        recorder.packet_generated("g#0", 0, port=0, wire_bytes=64)
        chrome = recorder.to_chrome()
        assert not [ev for ev in chrome["traceEvents"] if ev["ph"] == "X"]

    def test_schema_rejects_truncated_jsonl(self):
        recorder = _recorder()
        recorder.packet_generated("g#0", 0, port=0, wire_bytes=64)
        text = recorder.to_jsonl()
        # Drop the summary line: the record count can no longer reconcile.
        truncated = "\n".join(text.splitlines()[:-1]) + "\n"
        with pytest.raises(SchemaError):
            validate_trace_jsonl(truncated)
