"""Unit tests for the `repro campaign serve` HTTP layer."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.schema import (
    SchemaError,
    validate_campaign_cells,
    validate_campaign_event,
    validate_campaign_status,
    validate_campaign_violations,
)
from repro.orchestrator.serve import (
    CampaignServer,
    StoreFollower,
    monitor_from_store,
    prometheus_text,
)
from repro.orchestrator.store import ResultStore, events_path_for
from repro.orchestrator.telemetrybus import CampaignMonitor


def _record(spec_hash, status="ok", violations=None, wall=1.0):
    record = {
        "spec_hash": spec_hash,
        "scenario": "fw_nat_lb_10ge",
        "params": {"send_rate_gbps": 4.0},
        "status": status,
        "wall_time_s": wall,
    }
    if violations is not None:
        record["violations"] = violations
    return record


def _populated_monitor():
    monitor = CampaignMonitor(total=3, campaign="demo")
    monitor.handle({"type": "campaign_started", "total": 3, "workers": 2,
                    "campaign": "demo", "ts": 1.0})
    monitor.handle({"type": "cell_finished", "spec_hash": "a", "scenario": "s",
                    "params": {"rate": 2}, "status": "ok", "wall_time_s": 1.0})
    monitor.handle({"type": "violation", "spec_hash": "b", "scenario": "s",
                    "deployment": "payloadpark", "check": "c", "message": "m"})
    monitor.handle({"type": "cell_finished", "spec_hash": "b", "scenario": "s",
                    "params": {"rate": 4}, "status": "violation",
                    "wall_time_s": 2.0})
    return monitor


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read()


class TestEndpoints:
    @pytest.fixture()
    def server(self):
        with CampaignServer(_populated_monitor()) as srv:
            yield srv

    def test_status_is_schema_valid_json(self, server):
        code, headers, body = _get(server.url + "/status")
        assert code == 200
        assert headers["Content-Type"] == "application/json"
        status = validate_campaign_status(json.loads(body))
        assert status["cells_done"] == 2
        assert status["violations_total"] == 1

    def test_cells_lists_every_known_cell(self, server):
        _, _, body = _get(server.url + "/cells")
        payload = validate_campaign_cells(json.loads(body))
        assert {cell["spec_hash"] for cell in payload["cells"]} == {"a", "b"}

    def test_violations_ledger(self, server):
        _, _, body = _get(server.url + "/violations")
        payload = validate_campaign_violations(json.loads(body))
        assert payload["violations"][0]["check"] == "c"

    def test_events_ndjson_tail_respects_n(self, server):
        _, headers, body = _get(server.url + "/events?n=2")
        assert headers["Content-Type"] == "application/x-ndjson"
        lines = body.decode().splitlines()
        assert len(lines) == 2
        for line in lines:
            validate_campaign_event(json.loads(line))

    def test_events_rejects_non_integer_n(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/events?n=lots")
        assert excinfo.value.code == 400

    def test_metrics_is_prometheus_text(self, server):
        _, headers, body = _get(server.url + "/metrics")
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        text = body.decode()
        assert 'repro_campaign_cells{campaign="demo",state="ok"} 1' in text
        assert 'repro_campaign_violations_total{campaign="demo"} 1' in text

    def test_index_names_the_endpoints(self, server):
        _, _, body = _get(server.url + "/")
        assert "/status" in json.loads(body)["endpoints"]

    def test_unknown_route_404s_with_index(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404


class TestPrometheusText:
    def test_renders_every_core_metric(self):
        text = prometheus_text(_populated_monitor().status())
        for name in ("repro_campaign_cells_total", "repro_campaign_cells_done",
                     "repro_campaign_progress", "repro_campaign_eta_seconds",
                     "repro_campaign_violations_total"):
            assert f"# TYPE {name} " in text

    def test_unlabelled_when_campaign_unknown(self):
        monitor = CampaignMonitor(total=1)
        text = prometheus_text(monitor.status())
        assert "repro_campaign_cells_total 1" in text

    def test_exhausted_state_and_fault_counters_render(self):
        monitor = CampaignMonitor(total=2)
        monitor.handle({"type": "cell_finished", "spec_hash": "a",
                        "scenario": "s", "params": {}, "status": "exhausted",
                        "wall_time_s": 0.0, "ts": 1.0})
        monitor.handle({"type": "worker_died", "worker": 0, "pid": 1,
                        "reason": "timeout", "spec_hash": "a", "ts": 1.0})
        text = prometheus_text(validate_campaign_status(monitor.status()))
        assert 'state="exhausted"} 1' in text
        assert "# TYPE repro_campaign_workers_died_total counter" in text
        assert "# TYPE repro_campaign_retries_total counter" in text


class TestMonitorFromStore:
    def test_replays_latest_records(self, tmp_path):
        store = ResultStore(tmp_path / "c.jsonl")
        store.append(_record("a", status="error"))
        store.append(_record("a", status="ok"))  # retry supersedes
        store.append(_record(
            "b", status="violation",
            violations=[{"check": "c", "message": "m", "scenario": "s",
                         "deployment": "payloadpark"}],
        ))
        monitor = monitor_from_store(store=store)
        status = validate_campaign_status(monitor.status())
        assert status["cells_ok"] == 1
        assert status["cells_violation"] == 1
        assert status["cells_error"] == 0  # superseded by the retry
        assert status["violations_total"] == 1

    def test_empty_store_serves_clean_state(self, tmp_path):
        monitor = monitor_from_store(store=ResultStore(tmp_path / "x.jsonl"))
        status = validate_campaign_status(monitor.status())
        assert status["cells_total"] == 0
        assert status["state"] == "idle"


class TestStoreFollower:
    def test_follows_appends_exactly_once(self, tmp_path):
        store = ResultStore(tmp_path / "c.jsonl")
        monitor = CampaignMonitor(total=2)
        follower = StoreFollower(monitor, store.path)
        assert follower.poll_once() == 0
        store.append(_record("a"))
        assert follower.poll_once() == 1
        assert follower.poll_once() == 0  # offset advanced; no re-fold
        store.append(_record("b"))
        follower.poll_once()
        assert monitor.status()["cells_done"] == 2

    def test_torn_tail_line_waits_for_completion(self, tmp_path):
        store_path = tmp_path / "c.jsonl"
        monitor = CampaignMonitor(total=1)
        follower = StoreFollower(monitor, store_path)
        with store_path.open("w") as handle:
            handle.write(json.dumps(_record("a"))[:20])  # torn, no newline
        assert follower.poll_once() == 0
        with store_path.open("w") as handle:
            handle.write(json.dumps(_record("a")) + "\n")
        assert follower.poll_once() == 1

    def test_events_sidecar_takes_precedence_over_store(self, tmp_path):
        store = ResultStore(tmp_path / "c.jsonl")
        events_path = events_path_for(store.path)
        monitor = CampaignMonitor(total=1)
        follower = StoreFollower(monitor, store.path, events_path)
        violation = {"check": "c", "message": "m", "scenario": "s",
                     "deployment": "payloadpark"}
        with events_path.open("w") as handle:
            for event in (
                {"type": "cell_finished", "spec_hash": "a", "scenario": "s",
                 "params": {}, "status": "violation", "wall_time_s": 1.0,
                 "ts": 1.0},
                {"type": "violation", "spec_hash": "a", "ts": 1.0, **violation},
            ):
                handle.write(json.dumps(event) + "\n")
        store.append(_record("a", status="violation", violations=[violation]))
        follower.poll_once()
        # The store record must not double-count the sidecar's events.
        status = monitor.status()
        assert status["cells_done"] == 1
        assert status["violations_total"] == 1

    def test_follows_shard_files_that_appear_mid_poll(self, tmp_path):
        """A sharded store's files are picked up live — even shards
        created after the follower started polling."""
        base = tmp_path / "c.jsonl"
        monitor = CampaignMonitor(total=3)
        follower = StoreFollower(monitor, base)
        assert follower.poll_once() == 0
        sharded = ResultStore(base, shards=2)
        sharded.append(_record("00"))  # shard 0
        sharded.append(_record("01"))  # shard 1
        assert follower.poll_once() == 2
        assert follower.poll_once() == 0  # offsets advanced per shard
        sharded.append(_record("02"))
        assert follower.poll_once() == 1
        assert monitor.status()["cells_done"] == 3

    def test_thread_lifecycle(self, tmp_path):
        store = ResultStore(tmp_path / "c.jsonl")
        monitor = CampaignMonitor(total=1)
        follower = StoreFollower(monitor, store.path, poll_interval_s=0.02)
        follower.start()
        store.append(_record("a"))
        deadline = 5.0
        import time
        while monitor.status()["cells_done"] < 1 and deadline > 0:
            time.sleep(0.02)
            deadline -= 0.02
        follower.stop()
        assert monitor.status()["cells_done"] == 1


class TestCampaignSchemas:
    def test_status_rejects_wrong_schema(self):
        status = _populated_monitor().status()
        status["schema"] = "repro.metrics/v1"
        with pytest.raises(SchemaError, match="schema"):
            validate_campaign_status(status)

    def test_status_rejects_inconsistent_counts(self):
        status = _populated_monitor().status()
        status["cells_done"] = 99
        with pytest.raises(SchemaError, match="cells_done"):
            validate_campaign_status(status)

    def test_cells_rejects_duplicate_hashes(self):
        payload = _populated_monitor().cells_payload()
        payload["cells"].append(dict(payload["cells"][0]))
        with pytest.raises(SchemaError, match="duplicate"):
            validate_campaign_cells(payload)

    def test_event_requires_spec_hash_for_cell_events(self):
        with pytest.raises(SchemaError, match="spec_hash"):
            validate_campaign_event({"type": "cell_finished", "ts": 1.0})
        validate_campaign_event({"type": "campaign_started", "ts": 1.0})
