"""Fidelity tiers: segment planning, event translation, the tier controller.

Three layers, tested bottom-up:

* :func:`repro.fidelity.plan_steady_segments` is pure data-in/data-out —
  schedules, fault specs and arrival models in, steady intervals out;
* ``translate_events`` on both event loops is the clock-jump primitive —
  partition the queue at a cutoff, shift the kept past, preserve order;
* :class:`repro.fidelity.TierController` glues them into runs whose
  figure outputs the fluid-vs-packet metamorphic relation certifies
  (see ``tests/validation/test_metamorphic.py`` for that layer).
"""

import heapq
from dataclasses import replace

import pytest

from repro.errors import FidelityError
from repro.experiments.runner import (
    FIDELITY_MODES,
    DeploymentKind,
    ExperimentRunner,
    ScenarioConfig,
    current_default_fidelity,
    default_fidelity,
)
from repro.experiments.scenarios import fw_nat_lb_10ge, workload_scenario
from repro.fidelity import (
    FluidParams,
    SteadySegment,
    fluid_eligible,
    plan_steady_segments,
)
from repro.netsim.eventloop import EventLoop, FastEventLoop
from repro.workloads.base import TrafficModel
from repro.workloads.schedule import TraceSchedule


DURATION_NS = 10_000_000


def _scenario(**overrides):
    return replace(ScenarioConfig(name="fidelity-test"), **overrides)


class TestSegmentPlanning:
    def test_constant_rate_scenario_is_one_segment(self):
        segments = plan_steady_segments(
            _scenario(send_rate_gbps=6.0), DURATION_NS
        )
        assert segments == [SteadySegment(0, DURATION_NS, 6.0)]

    def test_arrival_model_workloads_admit_no_segments(self):
        scenario = workload_scenario("enterprise-poisson", send_rate_gbps=5.0)
        assert scenario.traffic_model.arrivals is not None
        assert plan_steady_segments(scenario, DURATION_NS) == []

    def test_ramp_phases_are_excluded(self):
        schedule = TraceSchedule.ramp(2.0, 8.0, duration_ns=4_000_000)
        scenario = _scenario(traffic_model=TrafficModel(schedule=schedule))
        segments = plan_steady_segments(scenario, DURATION_NS)
        # Only the post-profile tail (the ramp's end rate held forever)
        # is steady.
        assert segments == [SteadySegment(4_000_000, DURATION_NS, 8.0)]

    def test_step_schedule_yields_one_segment_per_rate(self):
        schedule = TraceSchedule.steps(
            [(3_000_000, 4.0), (3_000_000, 4.0), (2_000_000, 9.0)]
        )
        scenario = _scenario(traffic_model=TrafficModel(schedule=schedule))
        segments = plan_steady_segments(scenario, DURATION_NS)
        # Adjacent equal-rate phases merge; the non-repeating profile's
        # final rate holds past its end, merging with the last phase.
        assert segments == [
            SteadySegment(0, 6_000_000, 4.0),
            SteadySegment(6_000_000, DURATION_NS, 9.0),
        ]

    def test_repeating_schedule_unrolls_cycles(self):
        schedule = TraceSchedule.steps(
            [(2_000_000, 3.0), (2_000_000, 7.0)], repeat=True
        )
        scenario = _scenario(traffic_model=TrafficModel(schedule=schedule))
        segments = plan_steady_segments(scenario, DURATION_NS)
        assert segments == [
            SteadySegment(0, 2_000_000, 3.0),
            SteadySegment(2_000_000, 4_000_000, 7.0),
            SteadySegment(4_000_000, 6_000_000, 3.0),
            SteadySegment(6_000_000, 8_000_000, 7.0),
            SteadySegment(8_000_000, 10_000_000, 3.0),
        ]

    def test_fault_windows_cut_segments_with_margin(self):
        scenario = _scenario(
            faults={
                "events": [
                    {"at_us": 4_000, "kind": "link_down", "duration_us": 1_000},
                ]
            },
        )
        segments = plan_steady_segments(scenario, DURATION_NS, margin_ns=500_000)
        assert segments == [
            SteadySegment(0, 3_500_000, 8.0),
            SteadySegment(5_500_000, DURATION_NS, 8.0),
        ]

    def test_short_pieces_are_dropped(self):
        scenario = _scenario(
            faults={
                "events": [
                    {"at_us": 500, "kind": "link_down", "duration_us": 100},
                ]
            },
        )
        segments = plan_steady_segments(
            scenario, DURATION_NS, min_segment_ns=1_000_000
        )
        # The 500 us head piece is below the floor; the tail survives.
        assert segments == [SteadySegment(600_000, DURATION_NS, 8.0)]

    def test_empty_horizon_plans_nothing(self):
        assert plan_steady_segments(_scenario(), 0) == []


class TestFluidEligibility:
    def test_constant_scenario_is_eligible(self):
        assert fluid_eligible(_scenario(duration_us=100_000.0))

    def test_arrival_workload_is_not(self):
        scenario = workload_scenario("enterprise-poisson", send_rate_gbps=5.0)
        assert not fluid_eligible(replace(scenario, duration_us=100_000.0))

    def test_observed_scenario_is_not(self):
        scenario = _scenario(duration_us=100_000.0, observe={"metrics": True})
        assert not fluid_eligible(scenario)

    def test_too_short_a_horizon_is_not(self):
        floor_ns = FluidParams().min_profitable_ns()
        assert not fluid_eligible(_scenario(duration_us=floor_ns / 1_000 * 0.5))

    def test_eligibility_is_time_scale_invariant(self):
        # Windows scale with the horizon, so shrinking a run for a quick
        # pass neither gains nor loses fluid eligibility.
        long = _scenario(duration_us=FluidParams().min_profitable_ns() / 1_000 * 2)
        short = _scenario(duration_us=FluidParams().min_profitable_ns() / 1_000 / 2)
        for time_scale in (1.0, 0.25):
            assert fluid_eligible(long, time_scale=time_scale)
            assert not fluid_eligible(short, time_scale=time_scale)


class TestTranslateEvents:
    @pytest.mark.parametrize("loop_cls", [EventLoop, FastEventLoop])
    def test_pending_events_shift_and_execute_in_order(self, loop_cls):
        env = loop_cls()
        fired = []
        env.schedule_at(100, lambda: fired.append("kept"))
        env.schedule_at(5_000, lambda: fired.append("shifted-a"))
        env.schedule_at(6_000, lambda: fired.append("shifted-b"))
        env.run_until(100)
        moved = env.translate_events(10_000, 2_000)
        assert moved == 2
        assert env.now == 2_100
        env.run_until(20_000)
        assert fired == ["kept", "shifted-a", "shifted-b"]

    @pytest.mark.parametrize("loop_cls", [EventLoop, FastEventLoop])
    def test_kept_events_run_before_shifted_on_collision(self, loop_cls):
        env = loop_cls()
        fired = []
        # Shifting by 3_000 lands the 5_000 event exactly on the kept
        # 8_000 boundary event; the boundary (kept) event must win.
        env.schedule_at(5_000, lambda: fired.append("shifted"))
        env.schedule_at(8_000, lambda: fired.append("boundary"))
        env.translate_events(8_000, 3_000)
        env.run_until(10_000)
        assert fired == ["boundary", "shifted"]

    @pytest.mark.parametrize("loop_cls", [EventLoop, FastEventLoop])
    def test_rejects_a_cutoff_before_the_new_now(self, loop_cls):
        env = loop_cls()
        env.schedule_at(500, lambda: None)
        with pytest.raises(ValueError):
            env.translate_events(1_000, 2_000)  # cutoff < now + delta
        with pytest.raises(ValueError):
            env.translate_events(1_000, -1)

    def test_fast_loop_refuses_to_translate_mid_drain(self):
        env = FastEventLoop()
        env.schedule_at(100, lambda: env.translate_events(10_000, 1_000))
        with pytest.raises(RuntimeError):
            env.run_until(200)

    def test_loops_agree_after_translation(self):
        def drive(loop_cls):
            env = loop_cls()
            fired = []
            for when in (50, 2_000, 2_000, 3_500, 9_000):
                env.schedule_at(when, lambda w=when: fired.append((w, env.now)))
            env.run_until(100)
            env.translate_events(4_000, 1_500)
            env.run_until(12_000)
            return fired

        assert drive(EventLoop) == drive(FastEventLoop)


class TestFidelityKnob:
    def test_scenario_validates_the_mode(self):
        for mode in FIDELITY_MODES:
            assert _scenario(fidelity=mode).fidelity == mode
        with pytest.raises(ValueError):
            _scenario(fidelity="warp")

    def test_ambient_default_threads_into_scenarios(self):
        assert current_default_fidelity() == "packet"
        with default_fidelity("auto"):
            assert ScenarioConfig(name="ambient").fidelity == "auto"
        assert ScenarioConfig(name="ambient").fidelity == "packet"
        with pytest.raises(ValueError):
            default_fidelity("warp").__enter__()

    def test_uniform_fluid_failures_surface_as_fidelity_error(self):
        # A figure experiment whose grid points all fail with
        # FidelityError is a configuration error (clean `error:` line,
        # exit 2), not a broken grid — raise_on_failure must re-raise
        # the original type.  Mixed failures stay RuntimeError.
        from repro.orchestrator.executor import CampaignSummary

        def summary_with(errors):
            return CampaignSummary(
                total=len(errors),
                executed=len(errors),
                failed=len(errors),
                records=[
                    {"scenario": "s", "params": {}, "status": "error",
                     "error": e}
                    for e in errors
                ],
            )

        uniform = summary_with(
            ["FidelityError: no steady segment"] * 2
        )
        with pytest.raises(FidelityError, match="no steady segment"):
            uniform.raise_on_failure()
        mixed = summary_with(
            ["FidelityError: no steady segment", "KeyError: 'boom'"]
        )
        with pytest.raises(RuntimeError, match="2 of 2 campaign runs"):
            mixed.raise_on_failure()

    def test_fluid_mode_raises_without_steady_segments(self):
        scenario = replace(
            workload_scenario("enterprise-poisson", send_rate_gbps=4.0),
            fidelity="fluid",
            duration_us=1_000.0,
            warmup_us=250.0,
        )
        runner = ExperimentRunner()
        with pytest.raises(FidelityError):
            runner.run_deployment(scenario, DeploymentKind.PAYLOADPARK)


class TestTierControllerRuns:
    def test_auto_is_byte_identical_when_no_segments_exist(self):
        # An arrival-model workload admits no steady segment, so auto
        # must never leave the packet tier: reports match exactly.
        base = replace(
            workload_scenario("enterprise-poisson", send_rate_gbps=4.0),
            duration_us=1_000.0,
            warmup_us=250.0,
        )
        runner = ExperimentRunner()
        packet = runner.run_deployment(
            replace(base, fidelity="packet"), DeploymentKind.PAYLOADPARK
        )
        auto = runner.run_deployment(
            replace(base, fidelity="auto"), DeploymentKind.PAYLOADPARK
        )
        assert packet == auto

    def test_auto_jumps_on_a_long_steady_run(self):
        scenario = replace(
            fw_nat_lb_10ge(6.0),
            duration_us=30_000.0,
            fidelity="auto",
        )
        runner = ExperimentRunner(time_scale=0.25)
        report = runner.run_deployment(scenario, DeploymentKind.PAYLOADPARK)
        assert report.packets_sent > 0

    def test_controller_summary_counts_jumps(self):
        from repro.fidelity import TierController

        captured = {}
        original = TierController.advance

        def spying(self, horizon_ns):
            captured["controller"] = self
            return original(self, horizon_ns)

        scenario = replace(
            fw_nat_lb_10ge(6.0), duration_us=30_000.0, fidelity="auto"
        )
        runner = ExperimentRunner(time_scale=0.25)
        try:
            TierController.advance = spying
            runner.run_deployment(scenario, DeploymentKind.PAYLOADPARK)
        finally:
            TierController.advance = original
        summary = captured["controller"].summary()
        assert summary["segments_planned"] == 1
        assert summary["jumps"] >= 1
        assert summary["fluid_time_ns"] > 0
        assert summary["events_shifted"] > 0
