"""Unit tests for traffic distributions, workloads and the packet factory."""

import random

import pytest

from repro.errors import WorkloadSpecError
from repro.packet.packet import ETHERNET_UDP_HEADER_BYTES
from repro.traffic.distributions import (
    EmpiricalDistribution,
    FixedSizeDistribution,
    LognormalSizeDistribution,
    MAX_FRAME_BYTES,
    MIN_FRAME_BYTES,
    ParetoSizeDistribution,
    enterprise_datacenter_distribution,
    split_eligible_fraction,
)
from repro.traffic.pktgen import PacketFactory, PktGenConfig
from repro.traffic.workload import Workload


class TestDistributions:
    def test_fixed_size_always_returns_size(self):
        distribution = FixedSizeDistribution(512)
        rng = random.Random(0)
        assert {distribution.sample(rng) for _ in range(10)} == {512}
        assert distribution.mean() == 512

    def test_fixed_size_validates_range(self):
        with pytest.raises(WorkloadSpecError):
            FixedSizeDistribution(10)
        with pytest.raises(WorkloadSpecError):
            FixedSizeDistribution(5000)

    def test_empirical_cdf_monotone_and_normalized(self):
        distribution = EmpiricalDistribution([(100, 0.5), (1000, 0.5)])
        points = distribution.cdf_points()
        assert points[-1][1] == pytest.approx(1.0)
        assert points == sorted(points)

    def test_empirical_mean(self):
        distribution = EmpiricalDistribution([(100, 0.5), (300, 0.5)])
        assert distribution.mean() == pytest.approx(200.0)

    def test_empirical_sampling_matches_weights(self):
        distribution = EmpiricalDistribution([(100, 0.2), (1000, 0.8)])
        rng = random.Random(1)
        samples = [distribution.sample(rng) for _ in range(5000)]
        large_fraction = sum(1 for size in samples if size == 1000) / len(samples)
        assert large_fraction == pytest.approx(0.8, abs=0.03)

    def test_empirical_validation(self):
        with pytest.raises(WorkloadSpecError):
            EmpiricalDistribution([])
        with pytest.raises(WorkloadSpecError):
            EmpiricalDistribution([(100, -1.0)])
        with pytest.raises(WorkloadSpecError):
            EmpiricalDistribution([(10, 1.0)])

    def test_empirical_rejects_bad_weights(self):
        with pytest.raises(WorkloadSpecError):
            EmpiricalDistribution([(100, float("nan"))])
        with pytest.raises(WorkloadSpecError):
            EmpiricalDistribution([(100, float("inf"))])
        with pytest.raises(WorkloadSpecError):
            EmpiricalDistribution([(100, 0.5), (100, 0.5)])  # duplicate size

    def test_from_cdf_builds_equivalent_distribution(self):
        distribution = EmpiricalDistribution.from_cdf([(100, 0.2), (1000, 1.0)])
        assert distribution.cdf_points() == [(100, pytest.approx(0.2)), (1000, 1.0)]
        assert distribution.mean() == pytest.approx(0.2 * 100 + 0.8 * 1000)
        rng = random.Random(5)
        samples = [distribution.sample(rng) for _ in range(2000)]
        assert sum(1 for s in samples if s == 100) / 2000 == pytest.approx(0.2, abs=0.03)

    def test_from_cdf_validates_inputs(self):
        with pytest.raises(WorkloadSpecError):
            EmpiricalDistribution.from_cdf([])
        with pytest.raises(WorkloadSpecError):  # not sorted by size
            EmpiricalDistribution.from_cdf([(1000, 0.5), (100, 1.0)])
        with pytest.raises(WorkloadSpecError):  # CDF not increasing
            EmpiricalDistribution.from_cdf([(100, 0.8), (1000, 0.5)])
        with pytest.raises(WorkloadSpecError):  # value outside (0, 1]
            EmpiricalDistribution.from_cdf([(100, 0.0), (1000, 1.0)])
        with pytest.raises(WorkloadSpecError):
            EmpiricalDistribution.from_cdf([(100, 0.5), (1000, 1.5)])
        with pytest.raises(WorkloadSpecError):  # does not end at 1.0
            EmpiricalDistribution.from_cdf([(100, 0.2), (1000, 0.9)])
        with pytest.raises(WorkloadSpecError):  # duplicate size
            EmpiricalDistribution.from_cdf([(100, 0.2), (100, 1.0)])
        with pytest.raises(WorkloadSpecError):  # non-finite CDF value
            EmpiricalDistribution.from_cdf([(100, float("nan"))])

    def test_enterprise_distribution_matches_paper_statistics(self):
        distribution = enterprise_datacenter_distribution()
        assert distribution.mean() == pytest.approx(882, abs=25)
        small = distribution.fraction_below(ETHERNET_UDP_HEADER_BYTES + 160)
        assert small == pytest.approx(0.30, abs=0.03)
        assert split_eligible_fraction(distribution) == pytest.approx(0.70, abs=0.03)


class TestAnalyticDistributions:
    @pytest.mark.parametrize(
        "distribution",
        [ParetoSizeDistribution(), LognormalSizeDistribution()],
    )
    def test_samples_stay_in_frame_range(self, distribution):
        rng = random.Random(4)
        samples = [distribution.sample(rng) for _ in range(2000)]
        assert min(samples) >= MIN_FRAME_BYTES
        assert max(samples) <= MAX_FRAME_BYTES

    @pytest.mark.parametrize(
        "distribution",
        [ParetoSizeDistribution(), LognormalSizeDistribution()],
    )
    def test_numeric_mean_matches_sampling(self, distribution):
        rng = random.Random(4)
        sampled = sum(distribution.sample(rng) for _ in range(20_000)) / 20_000
        assert distribution.mean() == pytest.approx(sampled, rel=0.05)

    def test_pareto_is_small_packet_heavy(self):
        distribution = ParetoSizeDistribution(shape=1.3, scale=120.0)
        rng = random.Random(4)
        samples = [distribution.sample(rng) for _ in range(5000)]
        small = sum(1 for s in samples if s < 202) / len(samples)
        assert small > 0.4

    def test_cdf_points_monotone(self):
        for distribution in (ParetoSizeDistribution(), LognormalSizeDistribution()):
            points = distribution.cdf_points()
            values = [value for _size, value in points]
            assert values == sorted(values)
            assert points[-1] == (MAX_FRAME_BYTES, 1.0)

    def test_validation(self):
        with pytest.raises(WorkloadSpecError):
            ParetoSizeDistribution(shape=0)
        with pytest.raises(WorkloadSpecError):
            ParetoSizeDistribution(scale=-1)
        with pytest.raises(WorkloadSpecError):
            LognormalSizeDistribution(sigma=0)


class TestWorkload:
    def test_fixed_size_workload_pps(self):
        workload = Workload.fixed_size(500)
        assert workload.packets_per_second(4.0) == pytest.approx(1e6, rel=1e-3)

    def test_useful_fraction(self):
        workload = Workload.fixed_size(420)
        assert workload.useful_fraction() == pytest.approx(0.1)

    def test_blacklist_fraction_validation(self):
        with pytest.raises(WorkloadSpecError):
            Workload.fixed_size(500, blacklisted_fraction=1.5)

    def test_pcap_export_and_reimport(self, tmp_path):
        workload = Workload.enterprise()
        path = tmp_path / "enterprise.pcap"
        assert workload.export_pcap(path, packet_count=200) == 200
        reloaded = Workload.from_pcap(path)
        assert reloaded.mean_frame_bytes() == pytest.approx(
            workload.mean_frame_bytes(), rel=0.15
        )


class TestPacketFactory:
    def _factory(self, **workload_kwargs):
        workload = Workload.enterprise(**workload_kwargs)
        return PacketFactory(PktGenConfig(rate_gbps=10.0, workload=workload, seed=3))

    def test_deterministic_given_seed(self):
        first = self._factory()
        second = self._factory()
        for _ in range(20):
            assert first.next_packet().to_bytes() == second.next_packet().to_bytes()

    def test_sizes_follow_workload(self):
        factory = PacketFactory(
            PktGenConfig(rate_gbps=10.0, workload=Workload.fixed_size(384), seed=1)
        )
        assert {factory.next_packet().wire_length for _ in range(10)} == {384}

    def test_blacklisted_fraction_marks_sources(self):
        factory = self._factory(blacklisted_fraction=0.5)
        blacklisted = 0
        for _ in range(400):
            packet = factory.next_packet()
            if str(packet.ip.src).startswith("192.168."):
                blacklisted += 1
        assert 0.4 < blacklisted / 400 < 0.6

    def test_flows_cycle_round_robin(self):
        factory = self._factory()
        flow_count = factory.config.workload.flows.flow_count
        first = factory.next_packet().five_tuple()
        for _ in range(flow_count - 1):
            factory.next_packet()
        assert factory.next_packet().five_tuple().dst_ip == first.dst_ip

    def test_config_validation(self):
        with pytest.raises(WorkloadSpecError):
            PktGenConfig(rate_gbps=0, workload=Workload.fixed_size(256))
        with pytest.raises(WorkloadSpecError):
            PktGenConfig(rate_gbps=1.0, workload=Workload.fixed_size(256), burst_size=0)
