"""Unit tests for the Internet checksum and CRC helpers."""

import pytest

from repro.packet.checksum import internet_checksum, ones_complement_sum, verify_internet_checksum
from repro.packet.crc import crc16, crc32


class TestInternetChecksum:
    def test_known_vector(self):
        # Classic RFC 1071 example header fragment.
        data = bytes.fromhex("45000073000040004011b861c0a80001c0a800c7")
        assert internet_checksum(bytes.fromhex("450000730000400040110000c0a80001c0a800c7")) == 0xB861
        assert verify_internet_checksum(data)

    def test_zero_data(self):
        assert internet_checksum(b"\x00\x00") == 0xFFFF

    def test_odd_length_padding(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_verify_detects_corruption(self):
        data = bytearray(bytes.fromhex("45000073000040004011b861c0a80001c0a800c7"))
        data[0] ^= 0xFF
        assert not verify_internet_checksum(bytes(data))

    def test_incremental_equals_one_shot(self):
        first, second = b"hello wo", b"rld!"
        partial = ones_complement_sum(first)
        combined = ones_complement_sum(second, initial=partial)
        assert (~combined & 0xFFFF) == internet_checksum(first + second)

    def test_checksum_in_range(self):
        value = internet_checksum(bytes(range(200)))
        assert 0 <= value <= 0xFFFF


class TestCrc:
    def test_crc16_known_vector(self):
        # CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        assert crc16(b"123456789") == 0x29B1

    def test_crc32_known_vector(self):
        # CRC-32 (IEEE) of "123456789" is 0xCBF43926.
        assert crc32(b"123456789") == 0xCBF43926

    def test_crc16_detects_single_bit_flip(self):
        data = bytearray(b"payloadpark-tag")
        original = crc16(bytes(data))
        data[3] ^= 0x01
        assert crc16(bytes(data)) != original

    def test_crc_empty_input(self):
        assert crc16(b"") == 0xFFFF
        assert crc32(b"") == 0x00000000

    def test_crc16_is_deterministic(self):
        assert crc16(b"abc") == crc16(b"abc")
