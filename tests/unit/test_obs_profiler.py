"""Unit tests for the phase profiler: exclusive time, residual, report."""

import time

import pytest

from repro.obs.profiler import DISPATCH_STAGE, PhaseProfiler
from repro.obs.schema import validate_profile


def _spin(duration_s: float = 0.001) -> None:
    deadline = time.perf_counter() + duration_s
    while time.perf_counter() < deadline:
        pass


class TestPhaseProfiler:
    def test_enter_exit_counts_events(self):
        profiler = PhaseProfiler()
        for _ in range(3):
            profiler.enter("pipeline_walk")
            profiler.exit()
        profiler.enter("nf_processing")
        profiler.exit()
        report = profiler.report()
        events = {stage["name"]: stage["events"] for stage in report["stages"]}
        assert events["pipeline_walk"] == 3
        assert events["nf_processing"] == 1

    def test_nested_stages_get_exclusive_time(self):
        profiler = PhaseProfiler()
        with profiler.measure_total():
            profiler.enter("outer")
            _spin()
            profiler.enter("inner")
            _spin()
            profiler.exit()
            profiler.exit()
        report = profiler.report()
        stages = {stage["name"]: stage for stage in report["stages"]}
        # Inner time is credited to inner only, not double-counted.
        assert stages["inner"]["wall_ns"] > 0
        assert stages["outer"]["wall_ns"] > 0
        total_named = sum(
            stage["wall_ns"] for stage in report["stages"]
        )
        assert total_named == report["total_wall_ns"]

    def test_residual_dispatch_stage_completes_attribution(self):
        profiler = PhaseProfiler()
        with profiler.measure_total():
            profiler.enter("pipeline_walk")
            _spin()
            profiler.exit()
            _spin()  # unattributed time -> event_dispatch residual
        report = validate_profile(profiler.report())
        names = [stage["name"] for stage in report["stages"]]
        assert DISPATCH_STAGE in names
        assert report["attributed_fraction"] == pytest.approx(1.0)
        assert 0.0 < report["measured_fraction"] <= 1.0

    def test_report_without_measure_total_has_no_residual(self):
        profiler = PhaseProfiler()
        profiler.enter("pipeline_walk")
        _spin()
        profiler.exit()
        report = profiler.report()
        assert report["total_wall_ns"] == 0
        assert DISPATCH_STAGE not in [stage["name"] for stage in report["stages"]]

    def test_measure_total_accumulates_across_windows(self):
        profiler = PhaseProfiler()
        with profiler.measure_total():
            _spin()
        first = profiler.total_wall_ns
        with profiler.measure_total():
            _spin()
        assert profiler.total_wall_ns > first

    def test_stages_sorted_by_wall_time(self):
        profiler = PhaseProfiler()
        with profiler.measure_total():
            profiler.enter("short")
            profiler.exit()
            profiler.enter("long")
            _spin(0.002)
            profiler.exit()
        report = profiler.report()
        walls = [stage["wall_ns"] for stage in report["stages"]]
        assert walls == sorted(walls, reverse=True)
        assert report["stages"][0]["name"] == "long"

    def test_fractions_sum_to_at_most_one(self):
        profiler = PhaseProfiler()
        with profiler.measure_total():
            for name in ("a", "b", "c"):
                profiler.enter(name)
                _spin(0.0005)
                profiler.exit()
        report = validate_profile(profiler.report())
        assert sum(stage["fraction"] for stage in report["stages"]) <= 1.0 + 1e-9
