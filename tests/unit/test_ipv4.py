"""Unit tests for IPv4 addresses and headers."""

import pytest

from repro.packet.checksum import verify_internet_checksum
from repro.packet.ipv4 import PROTO_UDP, IPv4Address, IPv4Header


class TestIPv4Address:
    def test_round_trip_string(self):
        address = IPv4Address.from_string("10.1.2.3")
        assert str(address) == "10.1.2.3"

    def test_round_trip_bytes(self):
        raw = bytes([192, 168, 0, 1])
        assert IPv4Address.from_bytes(raw).to_bytes() == raw

    def test_rejects_bad_strings(self):
        for text in ("10.0.0", "10.0.0.256", "a.b.c.d"):
            with pytest.raises(ValueError):
                IPv4Address.from_string(text)

    def test_subnet_membership(self):
        address = IPv4Address.from_string("192.168.42.7")
        network = IPv4Address.from_string("192.168.0.0")
        assert address.in_subnet(network, 16)
        assert not address.in_subnet(network, 24)
        assert address.in_subnet(IPv4Address.from_string("0.0.0.0"), 0)

    def test_subnet_rejects_bad_prefix(self):
        with pytest.raises(ValueError):
            IPv4Address.from_string("10.0.0.1").in_subnet(IPv4Address(0), 40)


class TestIPv4Header:
    def _header(self, total_length=120):
        return IPv4Header(
            src=IPv4Address.from_string("10.0.0.1"),
            dst=IPv4Address.from_string("10.0.0.2"),
            protocol=PROTO_UDP,
            total_length=total_length,
        )

    def test_serialization_round_trip(self):
        header = self._header()
        parsed = IPv4Header.from_bytes(header.to_bytes())
        assert parsed.src == header.src
        assert parsed.dst == header.dst
        assert parsed.total_length == header.total_length
        assert parsed.protocol == PROTO_UDP

    def test_checksum_is_valid_on_wire(self):
        assert verify_internet_checksum(self._header().to_bytes())

    def test_checksum_changes_with_content(self):
        first = self._header(total_length=100).to_bytes()
        second = self._header(total_length=200).to_bytes()
        assert first[10:12] != second[10:12]

    def test_rejects_non_ipv4_version(self):
        raw = bytearray(self._header().to_bytes())
        raw[0] = (6 << 4) | 5
        with pytest.raises(ValueError):
            IPv4Header.from_bytes(bytes(raw))

    def test_decrement_ttl(self):
        header = self._header()
        header.ttl = 2
        assert header.decrement_ttl()
        assert header.ttl == 1
        assert not header.decrement_ttl()
        assert header.ttl == 0

    def test_copy_is_independent(self):
        header = self._header()
        clone = header.copy()
        clone.total_length += 10
        assert header.total_length != clone.total_length
