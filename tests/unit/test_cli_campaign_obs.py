"""CLI tests for campaign serve, obs diff/runs, and bench trend."""

import json
import logging

import pytest

from repro.cli import main
from repro.orchestrator.executor import _campaign_worker_init
from repro.orchestrator.store import ResultStore, events_path_for

CAMPAIGN_YAML = """\
name: cli-bus
scenario: fw_nat_lb_10ge
time_scale: 0.05
grid:
  send_rate_gbps: [2.0, 4.0]
  expiry_threshold: [1]
"""


def _metrics_export(counters):
    return {
        "schema": "repro.metrics/v1",
        "sample_interval_ns": 50_000,
        "samples_taken": 10,
        "counters": counters,
        "gauges": {},
        "histograms": {},
        "series": {},
    }


def _write_history(path, values):
    with path.open("w") as handle:
        for value in values:
            handle.write(json.dumps(
                {"kind": "fastpath", "fast": {"packets_per_sec": value}}
            ) + "\n")


@pytest.fixture()
def campaign_spec(tmp_path):
    spec = tmp_path / "campaign.yaml"
    spec.write_text(CAMPAIGN_YAML)
    return spec


class TestCampaignRunBus:
    def test_run_writes_events_sidecar_by_default(self, tmp_path, campaign_spec, capsys):
        store = tmp_path / "cli-bus.jsonl"
        assert main([
            "campaign", "run", str(campaign_spec),
            "--store", str(store), "--serial",
        ]) == 0
        events = events_path_for(store)
        assert events.exists()
        types = [json.loads(line)["type"]
                 for line in events.read_text().splitlines()]
        assert "campaign_started" in types
        assert "campaign_finished" in types

    def test_no_bus_suppresses_sidecar(self, tmp_path, campaign_spec):
        store = tmp_path / "cli-nobus.jsonl"
        assert main([
            "campaign", "run", str(campaign_spec),
            "--store", str(store), "--serial", "--no-bus",
        ]) == 0
        assert not events_path_for(store).exists()


class TestCampaignServeCLI:
    def test_posthoc_snapshot_serves_and_exits(self, tmp_path, campaign_spec, capsys):
        store_path = tmp_path / "cli-bus.jsonl"
        store = ResultStore(store_path)
        store.append({
            "spec_hash": "aa", "scenario": "fw_nat_lb_10ge",
            "params": {"send_rate_gbps": 2.0}, "status": "ok",
            "wall_time_s": 1.0,
        })
        assert main([
            "campaign", "serve", str(campaign_spec),
            "--store", str(store_path), "--port", "0",
            "--no-follow", "--max-seconds", "0.05",
        ]) == 0
        out = capsys.readouterr().out
        assert "serving campaign 'cli-bus'" in out
        assert "/metrics" in out

    def test_follow_mode_starts_and_stops(self, tmp_path, campaign_spec, capsys):
        store_path = tmp_path / "cli-bus.jsonl"
        assert main([
            "campaign", "serve", str(campaign_spec),
            "--store", str(store_path), "--port", "0",
            "--poll-interval", "0.02", "--max-seconds", "0.05",
        ]) == 0
        assert "(following)" in capsys.readouterr().out


class TestObsCLI:
    def test_diff_prints_biggest_movers(self, tmp_path, capsys):
        a = tmp_path / "a.metrics.json"
        b = tmp_path / "b.metrics.json"
        a.write_text(json.dumps(_metrics_export({"parked": 100, "evicted": 10})))
        b.write_text(json.dumps(_metrics_export({"parked": 300, "evicted": 11})))
        assert main(["obs", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "parked" in out and "+200.00%" in out

    def test_diff_json_mode(self, tmp_path, capsys):
        a = tmp_path / "a.metrics.json"
        b = tmp_path / "b.metrics.json"
        a.write_text(json.dumps(_metrics_export({"parked": 100})))
        b.write_text(json.dumps(_metrics_export({"parked": 150})))
        assert main(["obs", "diff", str(a), str(b), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"]["parked"]["delta"] == 50

    def test_diff_bad_export_exits_2(self, tmp_path, capsys):
        a = tmp_path / "a.metrics.json"
        a.write_text("{bad")
        assert main(["obs", "diff", str(a), str(a)]) == 2
        assert "unreadable" in capsys.readouterr().err

    def test_runs_lists_stores(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "grid.jsonl")
        store.append({"spec_hash": "a", "status": "ok"})
        assert main(["obs", "runs", "--root", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["campaign"] == "grid"

    def test_runs_empty_root(self, tmp_path, capsys):
        assert main(["obs", "runs", "--root", str(tmp_path / "none")]) == 0
        assert "no campaign stores" in capsys.readouterr().out


class TestBenchTrendCLI:
    def test_flags_injected_2x_regression(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        _write_history(history, [100.0, 101.0, 99.0, 100.0, 50.0, 49.0, 48.0])
        assert main([
            "bench", "trend", "--history", str(history),
        ]) == 3
        assert "REGRESSION" in capsys.readouterr().out

    def test_quiet_on_flat_history(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        _write_history(history, [100.0, 104.0, 97.0, 101.0, 95.0, 103.0, 99.0])
        assert main(["bench", "trend", "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "REGRESSION" not in out

    def test_json_mode_reports_ratio(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        _write_history(history, [100.0] * 4 + [50.0] * 3)
        assert main([
            "bench", "trend", "--history", str(history), "--json",
        ]) == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressed"] is True
        assert payload["ratio"] == pytest.approx(0.5)

    def test_custom_window_and_threshold(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        _write_history(history, [100.0, 100.0, 90.0])
        # 10% drop trips a 5% threshold with a window of 1.
        assert main([
            "bench", "trend", "--history", str(history),
            "--window", "1", "--threshold", "0.05",
        ]) == 3


class TestBusOverheadBench:
    FAKE_BUS = {
        "cells": 6, "time_scale": 0.05, "workers": 1, "repeat": 3,
        "off": {"wall_s": 1.0, "cells": 6, "cells_per_sec": 6.0},
        "on": {"wall_s": 1.01, "cells": 6, "cells_per_sec": 5.94},
        "on_over_off": 0.99,
    }

    def test_check_bus_overhead_gate(self):
        from repro.bench import check_bus_overhead

        ok, message = check_bus_overhead(self.FAKE_BUS)
        assert ok and "ok" in message
        bad = dict(self.FAKE_BUS, on_over_off=0.9)
        ok, message = check_bus_overhead(bad)
        assert not ok and "REGRESSION" in message

    def test_format_bus_overhead(self):
        from repro.bench import format_bus_overhead

        text = format_bus_overhead(self.FAKE_BUS)
        assert "bus off" in text and "bus  on" in text
        assert "0.990" in text

    def test_run_bus_overhead_measures_both_modes(self):
        from repro.bench import run_bus_overhead

        result = run_bus_overhead(cells=2, time_scale=0.05, repeat=1)
        assert result["off"]["cells"] == result["on"]["cells"] == 2
        assert result["off"]["cells_per_sec"] > 0
        assert result["on"]["cells_per_sec"] > 0
        assert result["on_over_off"] > 0


class TestWorkerLogLevelPropagation:
    def test_initializer_applies_cli_log_level(self):
        root = logging.getLogger("repro")
        previous_level = root.level
        previous_handlers = root.handlers[:]
        try:
            _campaign_worker_init(None, "debug", 5.0)
            assert root.level == logging.DEBUG
            assert len(root.handlers) == 1
        finally:
            root.handlers[:] = previous_handlers
            root.setLevel(previous_level)

    def test_initializer_without_level_leaves_logging_alone(self):
        root = logging.getLogger("repro")
        previous_handlers = root.handlers[:]
        _campaign_worker_init(None, None, 5.0)
        assert root.handlers == previous_handlers
