"""Unit tests for the UDP and TCP header codecs."""

import pytest

from repro.packet.tcp import FLAG_ACK, FLAG_SYN, TcpHeader
from repro.packet.udp import UdpHeader


class TestUdpHeader:
    def test_round_trip(self):
        header = UdpHeader(src_port=1234, dst_port=80, length=200, checksum=7)
        parsed = UdpHeader.from_bytes(header.to_bytes())
        assert parsed == header

    def test_wire_length(self):
        assert len(UdpHeader(src_port=1, dst_port=2).to_bytes()) == 8

    def test_rejects_bad_ports(self):
        with pytest.raises(ValueError):
            UdpHeader(src_port=-1, dst_port=2)
        with pytest.raises(ValueError):
            UdpHeader(src_port=1, dst_port=70000)

    def test_rejects_short_buffer(self):
        with pytest.raises(ValueError):
            UdpHeader.from_bytes(b"\x00" * 7)

    def test_copy_is_independent(self):
        header = UdpHeader(src_port=1, dst_port=2, length=50)
        clone = header.copy()
        clone.length = 60
        assert header.length == 50


class TestTcpHeader:
    def test_round_trip(self):
        header = TcpHeader(
            src_port=443, dst_port=51000, seq=1000, ack=2000, flags=FLAG_SYN | FLAG_ACK
        )
        parsed = TcpHeader.from_bytes(header.to_bytes())
        assert parsed == header

    def test_wire_length(self):
        assert len(TcpHeader(src_port=1, dst_port=2).to_bytes()) == 20

    def test_flag_helpers(self):
        assert TcpHeader(src_port=1, dst_port=2, flags=FLAG_SYN).is_syn
        assert not TcpHeader(src_port=1, dst_port=2, flags=FLAG_SYN).is_fin

    def test_rejects_out_of_range_sequence(self):
        with pytest.raises(ValueError):
            TcpHeader(src_port=1, dst_port=2, seq=1 << 32)

    def test_rejects_short_buffer(self):
        with pytest.raises(ValueError):
            TcpHeader.from_bytes(b"\x00" * 10)
