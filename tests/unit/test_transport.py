"""Unit tests for the closed-loop transport engine.

The harness wires a :class:`TrafficGenNode` to a scriptable network: a
``delay_ns`` callable decides each frame's round-trip delay, or returns
``None`` to black-hole it.  That makes loss patterns, reordering and
duplication exactly reproducible, so each congestion-control mechanism
can be pinned in isolation.
"""

import pytest

from repro.errors import WorkloadSpecError
from repro.netsim.eventloop import EventLoop
from repro.netsim.trafficgen_node import TrafficGenNode
from repro.traffic.pktgen import PktGenConfig
from repro.workloads import ClosedLoopFlows, ClosedLoopWorkload

RTT_NS = 10_000


def _model(**overrides):
    defaults = dict(
        flow_count=1,
        segments_per_transfer=8,
        mss_bytes=256,
        initial_cwnd_segments=2,
        initial_ssthresh_segments=64,
        min_rto_ns=200_000,
        max_rto_ns=1_600_000,
        start_jitter_ns=0,
    )
    defaults.update(overrides)
    return ClosedLoopFlows(**defaults)


class _Harness:
    """A generator node attached to a deterministic scriptable network."""

    def __init__(self, model, seed=1):
        self.env = EventLoop()
        spec = ClosedLoopWorkload(name="t", flows=model)
        config = PktGenConfig(
            rate_gbps=6.0, workload=spec.workload(), burst_size=4, seed=seed
        )
        self.node = TrafficGenNode(
            self.env, config, tx_ports=[0], traffic_model=spec.traffic_model()
        )
        self.transport = self.node.transport
        self.wire = []
        self.delay_ns = lambda packet: RTT_NS  # ideal fixed-RTT loop
        self.node.send_out = self._send_out

    def _send_out(self, port, packet):
        self.wire.append(packet)
        delay = self.delay_ns(packet)
        if delay is None:
            return  # black-holed
        self.env.schedule_in(delay, lambda: self.node.handle_packet(packet, 0))

    def run(self, duration_ns=2_000_000, drain_ns=2_000_000):
        self.node.start(duration_ns)
        self.env.run_until(self.env.now + duration_ns + drain_ns)

    def tx_log(self):
        return [
            (p.meta["tx_ns"], p.meta["cl_flow"], p.meta["cl_seq"],
             bool(p.meta.get("cl_retx")))
            for p in self.wire
        ]


class TestFlowModelValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"flow_count": 0},
            {"segments_per_transfer": 0},
            {"mss_bytes": 32},
            {"initial_cwnd_segments": 0},
            {"initial_ssthresh_segments": 1},
            {"max_cwnd_segments": 1, "initial_cwnd_segments": 2},
            {"dupack_threshold": 0},
            {"min_rto_ns": 0},
            {"min_rto_ns": 2_000_000, "max_rto_ns": 1_000_000},
            {"think_time_ns": -1},
            {"start_jitter_ns": -1},
        ],
    )
    def test_rejects_bad_parameters(self, overrides):
        with pytest.raises(WorkloadSpecError):
            _model(**overrides)

    def test_label_mentions_mode(self):
        assert "sync" in _model(sync_epochs=True).label()
        assert "async" in _model(sync_epochs=False).label()

    def test_workload_needs_closed_loop_flows(self):
        from repro.workloads import RoundRobinFlows

        with pytest.raises(WorkloadSpecError):
            ClosedLoopWorkload(name="t", flows=RoundRobinFlows())


class TestSlowStart:
    def test_window_doubles_per_round_trip(self):
        # cwnd=2 on an 8-segment transfer over a lossless 10 us loop:
        # rounds of 2, 4, 2 segments, one RTT apart (jitter pinned to 0,
        # so the first sends land on the 1 ns minimum-delay tick).
        h = _Harness(_model())
        h.run(duration_ns=25_000, drain_ns=50_000)
        times = [t for t, _f, _s, _r in h.tx_log()[:8]]
        assert times == [1, 1, RTT_NS + 1, RTT_NS + 1, RTT_NS + 1, RTT_NS + 1,
                         2 * RTT_NS + 1, 2 * RTT_NS + 1]

    def test_lossless_run_has_no_recovery_activity(self):
        h = _Harness(_model())
        h.run()
        t = h.transport
        assert t.retx_segments == 0
        assert t.fast_retransmits == 0
        assert t.timeouts == 0
        assert t.duplicate_segments == 0
        assert t.unique_delivered_segments == t.distinct_segments_sent
        assert t.epochs_completed >= 2

    def test_rtt_estimator_converges_on_the_loop_delay(self):
        h = _Harness(_model())
        h.run()
        conn = h.transport.flows[0]
        assert h.transport.rtt_samples > 10
        assert conn.srtt_ns == pytest.approx(RTT_NS, rel=0.05)
        # RTO sits on the configured floor (the RTT is microseconds).
        assert conn.rto_ns == pytest.approx(200_000)


class TestFastRetransmit:
    def test_single_loss_recovers_via_dup_acks(self):
        h = _Harness(_model(segments_per_transfer=16))
        dropped = []

        def delay(packet):
            if packet.meta["cl_seq"] == 5 and not packet.meta.get("cl_retx") \
                    and not dropped:
                dropped.append(packet)
                return None
            return RTT_NS

        h.delay_ns = delay
        h.run(duration_ns=100_000, drain_ns=300_000)
        t = h.transport
        assert t.fast_retransmits == 1
        assert t.timeouts == 0
        assert t.retx_segments == 1
        assert [s for _t, _f, s, retx in h.tx_log() if retx] == [5]
        # The retransmitted copy is the only copy that arrives: every
        # delivery is unique, and the loss cost no duplicate.
        assert t.duplicate_segments == 0
        assert t.unique_delivered_segments == t.distinct_segments_sent
        assert not t.flows[0].in_recovery
        assert t.epochs_completed >= 1  # recovery unblocked the transfer

    def test_karn_rule_excludes_retransmitted_sequences(self):
        # One segment, first copy black-holed: the only delivery is the
        # RTO retransmission, whose timing is ambiguous — it must not
        # feed the RTT estimator.
        h = _Harness(_model(segments_per_transfer=1))
        seen = []

        def delay(packet):
            if not seen:
                seen.append(packet)
                return None
            return RTT_NS

        h.delay_ns = delay
        h.run(duration_ns=205_000, drain_ns=400_000)
        t = h.transport
        assert t.timeouts == 1
        assert t.unique_delivered_segments == 1
        assert t.rtt_samples == 0
        assert t.flows[0].srtt_ns is None


class TestTimeout:
    def test_blackhole_fires_backed_off_timeouts(self):
        h = _Harness(_model())
        h.delay_ns = lambda packet: None
        h.run(duration_ns=1_500_000, drain_ns=2_000_000)
        t = h.transport
        conn = t.flows[0]
        assert t.timeouts >= 2
        assert t.fast_retransmits == 0
        assert t.retx_segments == t.timeouts  # one head-of-line retx each
        assert t.unique_delivered_segments == 0
        assert conn.cwnd == 1.0
        # Exponential backoff: the RTO grew beyond the floor, capped.
        assert 200_000 < conn.rto_ns <= 1_600_000

    def test_timers_never_rearm_after_stop(self):
        h = _Harness(_model())
        h.delay_ns = lambda packet: None
        h.run(duration_ns=400_000, drain_ns=4_000_000)
        # Post-horizon the engine may not schedule anything: the loop
        # drains to empty instead of ticking RTO timers forever.
        assert h.env.pending_events == 0
        sent_after = h.transport.segments_sent
        h.env.run_until(h.env.now + 10_000_000)
        assert h.transport.segments_sent == sent_after


class TestDuplicateDeliveries:
    def test_second_copy_counts_as_throughput_not_goodput(self):
        # The network delivers every frame twice (a parked original
        # racing its retransmission, in miniature): the second copy of
        # each sequence number must land in the duplicate counters.
        h = _Harness(_model())

        def duplicate_delivery(port, packet):
            h.wire.append(packet)
            h.env.schedule_in(RTT_NS, lambda: h.node.handle_packet(packet, 0))
            h.env.schedule_in(RTT_NS + 5_000, lambda: h.node.handle_packet(packet, 0))

        h.node.send_out = duplicate_delivery
        h.run(duration_ns=200_000, drain_ns=300_000)
        t = h.transport
        assert t.duplicate_segments > 0
        assert t.duplicate_segments == h.node.duplicate_packets_received
        assert t.unique_delivered_segments == h.node.packets_received - t.duplicate_segments
        assert h.node.useful_bytes_received == t.unique_delivered_useful_bytes
        # No loss happened, so recovery machinery stayed quiet even
        # though every frame arrived twice.
        assert t.timeouts == 0


class TestEpochs:
    def test_sync_epochs_barrier_on_the_slowest_flow(self):
        # Flow 1's loop is 5x slower; with the barrier on, no flow may
        # start transfer #2 until flow 1 finishes transfer #1.
        model = _model(flow_count=2, segments_per_transfer=4, sync_epochs=True)
        h = _Harness(model)
        h.delay_ns = lambda packet: RTT_NS * (1 + 4 * packet.meta["cl_flow"])
        h.run(duration_ns=1_000_000, drain_ns=1_000_000)
        log = h.tx_log()
        slow_done = max(
            t + 5 * RTT_NS for t, flow, seq, _r in log if flow == 1 and seq < 4
        )
        fast_restart = min(t for t, flow, seq, _r in log if flow == 0 and seq == 4)
        assert fast_restart >= slow_done
        assert h.transport.epochs_completed >= 1

    def test_async_epochs_restart_independently(self):
        model = _model(flow_count=2, segments_per_transfer=4, sync_epochs=False)
        h = _Harness(model)
        h.delay_ns = lambda packet: RTT_NS * (1 + 4 * packet.meta["cl_flow"])
        h.run(duration_ns=1_000_000, drain_ns=1_000_000)
        log = h.tx_log()
        slow_done = max(
            t + 5 * RTT_NS for t, flow, seq, _r in log if flow == 1 and seq < 4
        )
        fast_restart = min(t for t, flow, seq, _r in log if flow == 0 and seq == 4)
        assert fast_restart < slow_done  # no barrier: the fast flow laps


class TestDeterminism:
    def _log(self, seed):
        model = _model(flow_count=4, segments_per_transfer=8, start_jitter_ns=2_000)
        h = _Harness(model, seed=seed)
        h.run(duration_ns=300_000, drain_ns=300_000)
        return h.tx_log(), h.transport.state_summary()

    def test_same_seed_identical(self):
        assert self._log(3) == self._log(3)

    def test_different_seed_differs(self):
        assert self._log(3)[0] != self._log(4)[0]


class TestWorkloadSpecSurface:
    def test_describe_names_the_transport(self):
        spec = ClosedLoopWorkload(name="t", flows=_model())
        info = spec.describe()
        assert "NewReno" in info["transport"]
        assert info["epochs"] == "synchronized barrier"

    def test_transport_preview_shape(self):
        spec = ClosedLoopWorkload(name="t", flows=_model(flow_count=4))
        preview = spec.transport_preview(seed=7, max_packets=64)
        assert preview["flows"] == 4
        assert preview["modeled_rounds"] >= 1
        assert preview["min_rto_us"] == pytest.approx(200.0)

    def test_with_flows_sweeps_the_flow_model(self):
        spec = ClosedLoopWorkload(name="t", flows=_model())
        swept = spec.with_flows(flow_count=64, min_rto_ns=500_000)
        assert swept.flows.flow_count == 64
        assert swept.flows.min_rto_ns == 500_000
        assert spec.flows.flow_count == 1  # original untouched
