"""Edge-case coverage for the discrete-event loops.

The orchestrator's correctness rests on runs being deterministic and
independent; these tests pin the corner behaviours — horizon handling,
tie-breaking, scheduling boundaries — that the basic suite in
``test_netsim.py`` does not reach.  Every case runs against both the
reference heap loop and the fast calendar loop, which must agree.
"""

import pytest

from repro.netsim.eventloop import EventLoop, FastEventLoop


@pytest.fixture(params=[EventLoop, FastEventLoop], ids=["reference", "fast"])
def env(request):
    return request.param()


class TestSchedulingBoundaries:
    def test_schedule_at_current_time_is_allowed(self, env):
        env.schedule_in(10, lambda: None)
        env.run_until(10)
        fired = []
        env.schedule_at(10, lambda: fired.append(env.now))
        env.run_until(10)
        assert fired == [10]

    def test_schedule_in_zero_runs_after_current_event(self, env):
        order = []
        env.schedule_at(5, lambda: (order.append("first"),
                                    env.schedule_in(0, lambda: order.append("second"))))
        env.run_until(5)
        assert order == ["first", "second"]
        assert env.now == 5

    def test_scheduling_in_past_raises_even_mid_run(self, env):
        errors = []

        def try_past():
            try:
                env.schedule_at(env.now - 1, lambda: None)
            except ValueError as exc:
                errors.append(str(exc))

        env.schedule_at(100, try_past)
        env.run_until(100)
        assert len(errors) == 1 and "past" in errors[0]

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError, match="non-negative"):
            env.schedule_in(-5, lambda: None)

    def test_schedule_many_rejects_past_events(self, env):
        env.run_until(100)
        with pytest.raises(ValueError, match="past"):
            env.schedule_many([(150, lambda: None), (50, lambda: None)])


class TestHorizonSemantics:
    def test_run_until_advances_now_to_horizon_with_empty_queue(self, env):
        env.run_until(1_000)
        assert env.now == 1_000

    def test_run_until_advances_now_past_last_event(self, env):
        env.schedule_in(10, lambda: None)
        env.run_until(500)
        assert env.now == 500

    def test_event_exactly_at_horizon_executes(self, env):
        fired = []
        env.schedule_at(100, lambda: fired.append(True))
        env.run_until(100)
        assert fired == [True]
        assert env.pending_events == 0

    def test_earlier_horizon_does_not_move_time_backwards(self, env):
        env.run_until(1_000)
        env.run_until(10)
        assert env.now == 1_000

    def test_earlier_horizon_with_pending_events_is_a_clamped_no_op(self, env):
        # The regression this pins: after a prior run advanced ``now``,
        # calling run_until with an earlier horizon must neither rewind
        # the clock nor execute (or lose) the still-pending events.
        env.run_until(1_000)
        fired = []
        env.schedule_at(1_500, lambda: fired.append(env.now))
        env.run_until(10)
        assert env.now == 1_000
        assert fired == []
        assert env.pending_events == 1
        env.run_until(2_000)
        assert fired == [1_500]
        assert env.now == 2_000

    def test_both_loops_agree_on_events_exactly_at_horizon(self):
        # The two run_until docstrings once read differently ("until
        # time exceeds" vs "until time would exceed"); this pins the
        # actual, shared contract — the horizon is inclusive, ties at
        # the horizon all execute, and both loops agree on executed and
        # monitor-fire counts.
        def drive(loop_cls):
            loop = loop_cls()
            fires = []
            loop.monitor = fires.append
            order = []
            loop.schedule_at(50, lambda: order.append("early"))
            # Two ties exactly at the horizon, one of them scheduling a
            # third tie mid-drain, plus one event just beyond.
            loop.schedule_at(100, lambda: (
                order.append("tie-1"),
                loop.schedule_at(100, lambda: order.append("tie-3")),
            ))
            loop.schedule_at(100, lambda: order.append("tie-2"))
            loop.schedule_at(101, lambda: order.append("beyond"))
            loop.run_until(100)
            return order, fires, loop.events_executed, loop.now, loop.pending_events

        reference = drive(EventLoop)
        fast = drive(FastEventLoop)
        assert reference == fast
        order, fires, executed, now, pending = reference
        assert order == ["early", "tie-1", "tie-2", "tie-3"]
        assert fires == [50, 100, 100, 100]
        assert executed == 4 and now == 100 and pending == 1

    def test_monitor_fires_identically_across_successive_horizons(self):
        def drive(loop_cls):
            loop = loop_cls()
            fires = []
            loop.monitor = fires.append
            for when in (10, 20, 20, 30):
                loop.schedule_at(when, lambda: None)
            loop.run_until(20)
            first = list(fires)
            loop.run_until(30)
            return first, fires

        assert drive(EventLoop) == drive(FastEventLoop)
        first, total = drive(EventLoop)
        assert first == [10, 20, 20]
        assert total == [10, 20, 20, 30]

    def test_successive_windows_partition_events(self, env):
        hits = []
        for when in (10, 20, 30, 40):
            env.schedule_at(when, lambda w=when: hits.append(w))
        env.run_until(20)
        assert hits == [10, 20] and env.now == 20
        env.run_until(40)
        assert hits == [10, 20, 30, 40] and env.now == 40


class TestOrderingAndAccounting:
    def test_ties_preserve_scheduling_order_across_interleaved_times(self, env):
        order = []
        env.schedule_at(7, lambda: order.append("a"))
        env.schedule_at(5, lambda: order.append("b"))
        env.schedule_at(7, lambda: order.append("c"))
        env.schedule_at(5, lambda: order.append("d"))
        env.run_until(10)
        assert order == ["b", "d", "a", "c"]

    def test_ties_scheduled_from_callbacks_run_after_existing_ties(self, env):
        order = []
        env.schedule_at(5, lambda: (order.append(1),
                                    env.schedule_at(5, lambda: order.append(3))))
        env.schedule_at(5, lambda: order.append(2))
        env.run_until(5)
        assert order == [1, 2, 3]

    def test_events_executed_counts_only_executed(self, env):
        for when in (10, 20, 30):
            env.schedule_at(when, lambda: None)
        env.run_until(20)
        assert env.events_executed == 2
        assert env.pending_events == 1

    def test_run_all_respects_max_events(self, env):
        hits = []
        for when in (10, 20, 30):
            env.schedule_at(when, lambda w=when: hits.append(w))
        env.run_all(max_events=2)
        assert hits == [10, 20]
        assert env.pending_events == 1

    def test_run_all_max_events_can_stop_mid_tie_and_resume(self, env):
        hits = []
        for index in range(5):
            env.schedule_at(50, lambda i=index: hits.append(i))
        env.run_all(max_events=2)
        assert hits == [0, 1]
        assert env.pending_events == 3
        env.run_until(50)
        assert hits == [0, 1, 2, 3, 4]
        assert env.pending_events == 0

    def test_schedule_many_interleaves_with_schedule_at_by_call_order(self, env):
        order = []
        env.schedule_at(5, lambda: order.append("a"))
        env.schedule_many([(5, lambda: order.append("b")),
                           (3, lambda: order.append("c"))])
        env.schedule_at(5, lambda: order.append("d"))
        env.run_until(10)
        assert order == ["c", "a", "b", "d"]
