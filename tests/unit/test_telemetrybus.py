"""Unit tests for the campaign telemetry bus and monitor."""

import json
import logging
import time

import pytest

from repro.orchestrator.telemetrybus import (
    CampaignMonitor,
    CellTagFilter,
    TelemetryBus,
    cell_context,
    configure_worker_logging,
    current_cell_hash,
    events_from_record,
    install_worker_sink,
    start_heartbeat,
    worker_emit,
    worker_sink,
)


def _finished(spec_hash, status="ok", wall=1.0, params=None, **extra):
    return {
        "type": "cell_finished",
        "spec_hash": spec_hash,
        "scenario": "fw_nat_lb_10ge",
        "params": params or {"send_rate_gbps": 4.0},
        "status": status,
        "wall_time_s": wall,
        "ts": 100.0,
        **extra,
    }


class TestEventsFromRecord:
    def test_plain_ok_record_yields_one_finished_event(self):
        events = events_from_record(
            {
                "spec_hash": "abc",
                "scenario": "fw_nat_lb_10ge",
                "params": {"send_rate_gbps": 2.0},
                "status": "ok",
                "wall_time_s": 1.5,
            }
        )
        assert [event["type"] for event in events] == ["cell_finished"]
        assert events[0]["spec_hash"] == "abc"
        assert events[0]["wall_time_s"] == 1.5

    def test_violations_and_observability_become_events(self):
        events = events_from_record(
            {
                "spec_hash": "abc",
                "scenario": "s",
                "params": {},
                "status": "violation",
                "wall_time_s": 1.0,
                "error": "1 invariant violation(s)",
                "violations": [
                    {"check": "packet-conservation", "message": "lost 3",
                     "scenario": "s", "deployment": "payloadpark"},
                ],
                "observability": [{"deployment": "baseline"}],
            }
        )
        assert [event["type"] for event in events] == [
            "cell_finished", "violation", "obs_summary",
        ]
        assert events[0]["error"].startswith("1 invariant")
        assert events[1]["check"] == "packet-conservation"
        assert events[2]["summaries"] == 1


class TestCampaignMonitor:
    def test_progress_counts_and_state(self):
        monitor = CampaignMonitor(total=4)
        monitor.handle({"type": "campaign_started", "total": 4, "workers": 2,
                        "ts": 1.0})
        monitor.handle(_finished("a"))
        monitor.handle(_finished("b", status="error", error="boom"))
        status = monitor.status()
        assert status["cells_total"] == 4
        assert status["cells_done"] == 2
        assert status["cells_ok"] == 1
        assert status["cells_error"] == 1
        assert status["cells_pending"] == 2
        assert status["progress"] == 0.5
        assert status["state"] == "idle"

    def test_eta_derives_from_completed_wall_times_and_workers(self):
        monitor = CampaignMonitor(total=4)
        monitor.handle({"type": "campaign_started", "total": 4, "workers": 2})
        monitor.handle(_finished("a", wall=2.0))
        monitor.handle(_finished("b", wall=4.0))
        status = monitor.status()
        # mean 3.0s × 2 remaining / 2 workers
        assert status["eta_s"] == pytest.approx(3.0)
        assert status["mean_cell_wall_s"] == pytest.approx(3.0)

    def test_retry_and_worker_death_events_fold_into_status(self):
        monitor = CampaignMonitor(total=2)
        monitor.handle({"type": "cell_started", "spec_hash": "a",
                        "scenario": "s", "params": {}, "pid": 10, "ts": 1.0})
        monitor.handle({"type": "worker_died", "worker": 0, "pid": 10,
                        "reason": "crashed", "spec_hash": "a", "ts": 2.0})
        monitor.handle({"type": "cell_retried", "spec_hash": "a",
                        "scenario": "s", "params": {}, "attempt": 1,
                        "reason": "crashed", "backoff_s": 0.5, "ts": 2.0})
        status = monitor.status()
        assert status["retries_total"] == 1
        assert status["workers_died"] == 1
        assert monitor.cells["a"]["status"] == "running"
        assert monitor.cells["a"]["retries"] == 1
        assert monitor.cells["a"]["retry_reason"] == "crashed"
        # The retry is transparent once the cell lands.
        monitor.handle(_finished("a"))
        assert monitor.cells["a"]["status"] == "ok"

    def test_exhausted_is_terminal_and_counted(self):
        monitor = CampaignMonitor(total=2)
        monitor.handle(_finished("a"))
        monitor.handle(_finished("b", status="exhausted", wall=0.0, attempts=3,
                                 error="retry budget exhausted"))
        status = monitor.status()
        assert status["cells_done"] == 2
        assert status["cells_exhausted"] == 1
        assert status["cells_pending"] == 0
        assert monitor.has_terminal("b")
        # The exhausted marker's 0.0 wall time must not skew the mean.
        assert status["mean_cell_wall_s"] == pytest.approx(1.0)

    def test_exhausted_record_event_carries_attempts(self):
        events = events_from_record(
            {
                "spec_hash": "abc",
                "scenario": "s",
                "params": {},
                "status": "exhausted",
                "attempts": 3,
                "error": "retry budget exhausted",
                "wall_time_s": 0.0,
            }
        )
        assert events[0]["type"] == "cell_finished"
        assert events[0]["status"] == "exhausted"
        assert events[0]["attempts"] == 3

    def test_eta_is_zero_once_finished(self):
        monitor = CampaignMonitor(total=1)
        monitor.handle(_finished("a"))
        monitor.handle({"type": "campaign_finished", "executed": 1})
        status = monitor.status()
        assert status["state"] == "finished"
        assert status["eta_s"] == 0.0

    def test_eta_is_null_when_finished_without_completed_cells(self):
        # A monitor can be marked finished before any terminal record
        # arrives (e.g. rebuilt from a store of running cells); claiming
        # "finished in 0.0s" at t=0 was the regression — eta_s must stay
        # null until the first completed cell.
        monitor = CampaignMonitor(total=2)
        monitor.handle({"type": "cell_started", "spec_hash": "a",
                        "scenario": "s", "params": {}, "pid": 1, "ts": 5.0})
        monitor.handle({"type": "cell_started", "spec_hash": "b",
                        "scenario": "s", "params": {}, "pid": 2, "ts": 5.0})
        monitor.finished = True
        status = monitor.status()
        assert status["state"] == "finished"
        assert status["eta_s"] is None
        # The Prometheus exposition must omit the ETA line, not emit 0.0.
        from repro.orchestrator.serve import prometheus_text

        text = prometheus_text(status)
        assert "repro_campaign_eta_seconds" not in text
        # Once a cell completes, the ETA line comes back.
        monitor.handle(_finished("a"))
        monitor.handle(_finished("b"))
        finished = monitor.status()
        assert finished["eta_s"] == 0.0
        assert "repro_campaign_eta_seconds" in prometheus_text(finished)

    def test_monitor_from_store_ignores_running_cells_for_finished(self):
        # monitor_from_store used to flip `finished` whenever the number
        # of *known* cells reached the total, counting still-running
        # cells replayed from the events sidecar.
        from repro.orchestrator.serve import monitor_from_store

        monitor = monitor_from_store()
        assert monitor.status()["state"] == "idle"

        class _Store:
            def latest_by_hash(self):
                return {
                    "a": {"spec_hash": "a", "scenario": "s", "params": {},
                          "status": "ok", "wall_time_s": 1.0},
                }

        class _Campaign:
            point_count = 2
            name = "c"
            scenario = "s"
            mode = "both"

        partial = monitor_from_store(campaign=_Campaign(), store=_Store())
        partial.handle({"type": "cell_started", "spec_hash": "b",
                        "scenario": "s", "params": {}, "pid": 1, "ts": 5.0})
        # Two known cells, but only one terminal: not finished.
        status = partial.status()
        assert status["state"] != "finished"
        assert status["cells_done"] == 1

        class _FullStore:
            def latest_by_hash(self):
                return {
                    "a": {"spec_hash": "a", "scenario": "s", "params": {},
                          "status": "ok", "wall_time_s": 1.0},
                    "b": {"spec_hash": "b", "scenario": "s", "params": {},
                          "status": "ok", "wall_time_s": 1.0},
                }

        complete = monitor_from_store(campaign=_Campaign(), store=_FullStore())
        status = complete.status()
        assert status["state"] == "finished"
        assert status["eta_s"] == 0.0

    def test_running_cells_tracked_through_started_events(self):
        monitor = CampaignMonitor(total=2)
        monitor.handle({"type": "cell_started", "spec_hash": "a",
                        "scenario": "s", "params": {}, "pid": 1, "ts": 5.0})
        status = monitor.status()
        assert status["cells_running"] == 1
        assert status["state"] == "running"
        monitor.handle(_finished("a"))
        assert monitor.status()["cells_running"] == 0

    def test_heartbeat_updates_cell_timestamp(self):
        monitor = CampaignMonitor(total=1)
        monitor.handle({"type": "heartbeat", "spec_hash": "a", "ts": 9.0})
        assert monitor.cells["a"]["heartbeat_ts"] == 9.0

    def test_violations_deduplicate_on_replay(self):
        monitor = CampaignMonitor(total=1)
        violation = {"type": "violation", "spec_hash": "a", "scenario": "s",
                     "deployment": "payloadpark", "check": "c", "message": "m"}
        monitor.handle(violation)
        monitor.handle(dict(violation))  # replays fold to one ledger entry
        assert len(monitor.violations) == 1
        assert monitor.cells["a"]["violations"] == 1
        monitor.handle({**violation, "message": "different"})
        assert len(monitor.violations) == 2

    def test_slices_group_terminal_cells_per_axis_value(self):
        monitor = CampaignMonitor(total=4)
        monitor.handle(_finished("a", params={"rate": 2, "expiry": 1}, wall=1.0))
        monitor.handle(_finished("b", params={"rate": 2, "expiry": 4}, wall=3.0,
                                 status="error"))
        slices = monitor.status()["slices"]
        assert slices["rate"]["2"]["cells"] == 2
        assert slices["rate"]["2"]["ok"] == 1
        assert slices["rate"]["2"]["failed"] == 1
        assert slices["rate"]["2"]["mean_wall_s"] == pytest.approx(2.0)
        assert slices["expiry"]["1"]["cells"] == 1

    def test_events_ring_is_bounded_and_tail_ordered(self):
        monitor = CampaignMonitor(events_capacity=3)
        for index in range(5):
            monitor.handle({"type": "heartbeat", "spec_hash": "a", "seq": index})
        tail = monitor.events_tail(10)
        assert [event["seq"] for event in tail] == [2, 3, 4]
        assert [event["seq"] for event in monitor.events_tail(2)] == [3, 4]
        assert monitor.events_seen == 5

    def test_unknown_event_type_only_hits_the_ring(self):
        monitor = CampaignMonitor(total=1)
        monitor.handle({"type": "mystery", "payload": 1})
        assert monitor.cells == {}
        assert monitor.events_tail(5)[-1]["type"] == "mystery"

    def test_has_terminal(self):
        monitor = CampaignMonitor(total=2)
        monitor.handle({"type": "cell_started", "spec_hash": "a"})
        assert not monitor.has_terminal("a")
        monitor.handle(_finished("a"))
        assert monitor.has_terminal("a")
        assert not monitor.has_terminal("zz")


class TestTelemetryBus:
    def test_events_drain_into_monitor_and_sidecar(self, tmp_path):
        events_path = tmp_path / "c.events.jsonl"
        with TelemetryBus(events_path=events_path) as bus:
            bus.emit({"type": "campaign_started", "total": 1, "workers": 1})
            bus.emit_record(
                {"spec_hash": "a", "scenario": "s", "params": {},
                 "status": "ok", "wall_time_s": 0.5}
            )
        assert bus.monitor.status()["cells_done"] == 1
        lines = [json.loads(line) for line in
                 events_path.read_text().splitlines()]
        assert [line["type"] for line in lines] == [
            "campaign_started", "cell_finished",
        ]
        assert all("ts" in line for line in lines)

    def test_stop_is_a_drain_barrier(self, tmp_path):
        bus = TelemetryBus(events_path=tmp_path / "e.jsonl").start()
        for index in range(200):
            bus.emit({"type": "heartbeat", "spec_hash": "a", "seq": index})
        bus.stop()
        assert bus.monitor.events_seen == 200

    def test_worker_emit_routes_through_installed_sink(self):
        bus = TelemetryBus().start()
        try:
            with worker_sink(bus.queue.put):
                worker_emit({"type": "heartbeat", "spec_hash": "w"})
        finally:
            bus.stop()
        assert bus.monitor.events_seen == 1

    def test_worker_emit_without_sink_is_a_noop(self):
        install_worker_sink(None)
        worker_emit({"type": "heartbeat", "spec_hash": "x"})  # must not raise

    def test_worker_emit_swallows_sink_errors(self):
        def broken(event):
            raise RuntimeError("queue gone")

        with worker_sink(broken):
            worker_emit({"type": "heartbeat", "spec_hash": "x"})  # must not raise

    def test_heartbeat_thread_emits_until_stopped(self):
        bus = TelemetryBus().start()
        try:
            with worker_sink(bus.queue.put, heartbeat_interval_s=0.02):
                thread = start_heartbeat("abc")
                assert thread is not None
                time.sleep(0.1)
                thread.stop()
        finally:
            bus.stop()
        beats = [event for event in bus.monitor.events_tail(0x100)
                 if event["type"] == "heartbeat"]
        assert beats
        assert all(beat["spec_hash"] == "abc" for beat in beats)

    def test_heartbeat_without_sink_returns_none(self):
        install_worker_sink(None)
        assert start_heartbeat("abc") is None


class TestWorkerLogging:
    def test_cell_context_sets_and_restores_hash(self):
        assert current_cell_hash() == "-"
        with cell_context("deadbeef"):
            assert current_cell_hash() == "deadbeef"
        assert current_cell_hash() == "-"

    def test_records_are_tagged_with_the_running_cell(self):
        record = logging.LogRecord("repro.x", logging.INFO, __file__, 1,
                                   "msg", (), None)
        with cell_context("cafef00d"):
            assert CellTagFilter().filter(record)
        assert record.cell == "cafef00d"

    def test_configure_worker_logging_sets_level_and_formatter(self):
        configure_worker_logging("debug")
        root = logging.getLogger("repro")
        try:
            assert root.level == logging.DEBUG
            assert len(root.handlers) == 1
            record = logging.LogRecord("repro.worker", logging.INFO, __file__,
                                       1, "hello", (), None)
            with cell_context("feedface"):
                for log_filter in root.handlers[0].filters:
                    log_filter.filter(record)
                formatted = root.handlers[0].format(record)
            assert "feedface" in formatted
            assert "hello" in formatted
        finally:
            configure_worker_logging("info")

    def test_configure_worker_logging_rejects_unknown_level(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_worker_logging("loud")
