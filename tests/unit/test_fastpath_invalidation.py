"""Control-plane invalidation of the fast-path caches.

The fast path memoizes aggressively — whole-pipe decisions keyed by
(ingress port, dst MAC), firewall verdicts keyed by (src, dst port),
Maglev backend choices keyed by flow.  Every control-plane mutation that
changes forwarding behaviour must evict the corresponding cache, or the
dataplane silently keeps replaying a stale world.  These tests mutate
each control surface and assert both the eviction and the behaviour
change it must produce.
"""

import pytest

from repro.core.program import BaselineProgram
from repro.experiments.runner import default_binding
from repro.nf.firewall import Firewall, FirewallRule
from repro.nf.loadbalancer import Backend, MaglevLoadBalancer
from repro.packet.flows import FiveTuple
from repro.packet.ipv4 import PROTO_UDP, IPv4Address
from repro.packet.packet import Packet
from repro.switchsim.mat import MatchActionTable


def _baseline_program():
    program = BaselineProgram([default_binding()])
    program.enable_fast_path()
    return program


class TestDecisionCacheInvalidation:
    def test_l2_entry_install_evicts_whole_pipe_decisions(self):
        program = _baseline_program()
        binding = program.bindings[0]
        packet = Packet.udp(dst_mac="02:aa:00:00:00:07")

        ctx = program.process(packet, binding.nf_port)
        assert ctx.egress_port == binding.default_egress_port
        assert program._decision_cache  # the walk was memoized

        # Replays hit the cache (no new recording).
        cached_before = dict(program._decision_cache)
        ctx = program.process(Packet.udp(dst_mac="02:aa:00:00:00:07"), binding.nf_port)
        assert ctx.egress_port == binding.default_egress_port
        assert program._decision_cache == cached_before

        # Installing an L2 route for that MAC must evict the cache and
        # change the egress decision on the very next packet.
        program.add_l2_entry("02:aa:00:00:00:07", binding.ingress_ports[1])
        assert not program._decision_cache
        ctx = program.process(Packet.udp(dst_mac="02:aa:00:00:00:07"), binding.nf_port)
        assert ctx.egress_port == binding.ingress_ports[1]

    def test_invalidate_fast_path_clears_the_cache(self):
        program = _baseline_program()
        binding = program.bindings[0]
        program.process(Packet.udp(), binding.ingress_ports[0])
        assert program._decision_cache
        program.invalidate_fast_path()
        assert not program._decision_cache

    def test_pipeline_version_bump_makes_cached_decisions_stale(self):
        program = _baseline_program()
        binding = program.bindings[0]
        pipe = program.asic.pipe_for_port(binding.nf_port)

        program.process(Packet.udp(), binding.ingress_ports[0])
        (entry,) = program._decision_cache.values()
        recorded_version = entry.version

        # A control-plane table install bumps the pipeline version.
        pipe.pipeline.stage(0).add_table(
            MatchActionTable(
                name="noop",
                match=lambda ctx: False,
                action=lambda ctx: None,
                match_bits=8,
                stateful=False,
            )
        )
        assert pipe.pipeline.version > recorded_version

        # The stale entry must be re-recorded, not replayed.
        ctx = program.process(Packet.udp(), binding.ingress_ports[0])
        assert ctx.egress_port == binding.nf_port
        (fresh,) = program._decision_cache.values()
        assert fresh.version == pipe.pipeline.version

    def test_reset_state_invalidates(self):
        program = _baseline_program()
        binding = program.bindings[0]
        program.process(Packet.udp(), binding.ingress_ports[0])
        assert program._decision_cache
        program.invalidate_fast_path()
        ctx = program.process(Packet.udp(), binding.ingress_ports[0])
        assert ctx.egress_port == binding.nf_port


class TestFirewallVerdictCacheInvalidation:
    def _packet(self, src="172.16.5.9"):
        return Packet.udp(src_ip=src, dst_port=80)

    def test_add_rule_evicts_cached_verdicts(self):
        firewall = Firewall(rules=[FirewallRule.blacklist("192.168.0.0/16")])
        firewall.enable_fast_path()
        assert firewall.process(self._packet()).forwarded
        assert firewall._verdict_cache  # memoized

        firewall.add_rule(FirewallRule.blacklist("172.16.0.0/12"))
        assert not firewall._verdict_cache
        result = firewall.process(self._packet())
        assert not result.forwarded

    def test_remove_rule_evicts_cached_verdicts(self):
        firewall = Firewall(
            rules=[
                FirewallRule.blacklist("172.16.0.0/12"),
                FirewallRule.blacklist("192.168.0.0/16"),
            ]
        )
        firewall.enable_fast_path()
        assert not firewall.process(self._packet()).forwarded
        assert firewall._verdict_cache

        removed = firewall.remove_rule(0)
        assert removed.prefix_len == 12
        assert not firewall._verdict_cache
        assert firewall.process(self._packet()).forwarded

    def test_rule_updates_change_cycle_costs_too(self):
        # The memoized verdict includes the probe count; rule changes must
        # refresh it or the cost model drifts.
        firewall = Firewall(rules=[FirewallRule.blacklist("192.168.0.0/16")])
        firewall.enable_fast_path()
        one_rule = firewall.process(self._packet()).cycles
        firewall.add_rule(FirewallRule.blacklist("10.99.0.0/16"))
        two_rules = firewall.process(self._packet()).cycles
        assert two_rules == one_rule + firewall.cycles_per_rule

    def test_cached_verdicts_match_slow_path(self):
        rules = [FirewallRule.blacklist(f"172.30.{i}.0/24") for i in range(5)]
        rules.append(FirewallRule.blacklist("192.168.0.0/16"))
        fast = Firewall(rules=list(rules))
        fast.enable_fast_path()
        slow = Firewall(rules=list(rules))
        for index in range(64):
            packet = Packet.udp(src_ip=f"192.168.{index % 3}.{index}", dst_port=index)
            a, b = fast.process(packet), slow.process(packet)
            assert (a.forwarded, a.cycles) == (b.forwarded, b.cycles)


class TestMaglevBackendChurnInvalidation:
    def _flow(self, index):
        return FiveTuple(
            src_ip=IPv4Address.from_string(f"10.1.0.{index % 250 + 1}"),
            dst_ip=IPv4Address.from_string("10.2.0.1"),
            protocol=PROTO_UDP,
            src_port=1024 + index,
            dst_port=80,
        )

    def test_remove_backend_evicts_cached_choices(self):
        balancer = MaglevLoadBalancer.with_backend_count(4)
        balancer.enable_fast_path()
        flows = [self._flow(i) for i in range(200)]
        before = {flow: balancer.backend_for(flow) for flow in flows}
        assert balancer._backend_cache

        victim = before[flows[0]].name
        balancer.remove_backend(victim)
        assert not any(
            backend.name == victim
            for backend in balancer._backend_cache.values()
        )
        after = {flow: balancer.backend_for(flow) for flow in flows}
        assert all(backend.name != victim for backend in after.values())
        # Post-churn choices must equal a freshly built balancer's (the
        # cache may never pin flows to the pre-churn table).
        fresh = MaglevLoadBalancer(
            backends=list(balancer.backends), table_size=balancer.table_size
        )
        assert {f: b.name for f, b in after.items()} == {
            f: fresh.backend_for(f).name for f in flows
        }

    def test_add_backend_evicts_cached_choices(self):
        balancer = MaglevLoadBalancer.with_backend_count(3)
        balancer.enable_fast_path()
        flows = [self._flow(i) for i in range(300)]
        for flow in flows:
            balancer.backend_for(flow)
        balancer.add_backend(Backend.from_string("backend-99", "10.100.0.99"))
        after = {flow: balancer.backend_for(flow).name for flow in flows}
        # The new backend must actually receive traffic (cache was evicted).
        assert "backend-99" in set(after.values())

    def test_churn_validation(self):
        balancer = MaglevLoadBalancer.with_backend_count(2)
        with pytest.raises(ValueError):
            balancer.add_backend(Backend.from_string("backend-0", "10.0.0.9"))
        with pytest.raises(ValueError):
            balancer.remove_backend("nope")
        balancer.remove_backend("backend-0")
        with pytest.raises(ValueError):
            balancer.remove_backend("backend-1")  # pool may not become empty
