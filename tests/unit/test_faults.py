"""Unit tests for the fault-injection subsystem.

Covers the declarative layer (event validation, schedule
materialization, the profile registry), the link fault state
(down/loss/jitter windows and their counters), the control-plane
manager (expiry reconfiguration, parked-payload drains, the
link-counter reset regression), and the injector's target resolution.
"""

import pytest

from repro.controlplane import ControlPlaneManager
from repro.core.config import NfServerBinding, PayloadParkConfig
from repro.core.program import BaselineProgram, PayloadParkProgram
from repro.errors import FaultSpecError
from repro.faults import (
    EventSchedule,
    FaultInjectorNode,
    fault_profile_names,
    get_fault_profile,
    register_fault_profile,
    validate_event_record,
)
from repro.faults.registry import FAULT_REGISTRY
from repro.netsim.eventloop import EventLoop
from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.packet.packet import Packet


class _Sink(Node):
    def __init__(self, env, name="sink"):
        super().__init__(env, name)
        self.received = 0

    def handle_packet(self, packet, port):
        self.received += 1


def _frame(size=500):
    return Packet.from_bytes(bytes(size))


def _wired_link(env, **kwargs):
    a, b = _Sink(env, "a"), _Sink(env, "b")
    return Link(env, a, 0, b, 0, **kwargs), a, b


class TestEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError, match="needs a known 'kind'"):
            validate_event_record({"kind": "meteor_strike", "at_us": 1})

    def test_missing_time_rejected(self):
        with pytest.raises(FaultSpecError, match="needs 'at_us' or 'at_frac'"):
            validate_event_record({"kind": "link_down"})

    def test_both_times_rejected(self):
        with pytest.raises(FaultSpecError, match="not both"):
            validate_event_record({"kind": "link_down", "at_us": 1, "at_frac": 0.5})

    def test_unknown_key_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown key"):
            validate_event_record({"kind": "link_down", "at_us": 1, "frobnicate": 2})

    def test_duration_only_on_window_kinds(self):
        with pytest.raises(FaultSpecError, match="does not take a duration"):
            validate_event_record(
                {"kind": "expiry_threshold", "at_us": 1, "value": 2, "duration_us": 5}
            )

    @pytest.mark.parametrize("record,match", [
        ({"kind": "link_loss", "at_us": 1, "probability": 0.0}, "probability"),
        ({"kind": "link_loss", "at_us": 1, "probability": 1.5}, "probability"),
        ({"kind": "link_jitter", "at_us": 1, "jitter_ns": 0}, "jitter_ns"),
        ({"kind": "backend_churn", "at_us": 1, "action": "explode"}, "action"),
        ({"kind": "firewall_churn", "at_us": 1, "action": "flip"}, "action"),
        ({"kind": "expiry_threshold", "at_us": 1, "value": 0}, "at least 1"),
        ({"kind": "park_drain", "at_us": 1, "fraction": 0.0}, "fraction"),
        ({"kind": "link_down", "at_frac": 1.5}, "at_frac"),
    ])
    def test_parameter_bounds(self, record, match):
        with pytest.raises(FaultSpecError, match=match):
            validate_event_record(record)


class TestEventSchedule:
    def test_empty_schedule_rejected(self):
        with pytest.raises(FaultSpecError, match="at least one event"):
            EventSchedule()

    def test_from_spec_accepts_profile_name_dict_and_schedule(self):
        by_name = EventSchedule.from_spec("link-flap")
        assert by_name.name == "link-flap"
        inline = EventSchedule.from_spec(
            {"events": [{"kind": "link_down", "at_frac": 0.5}]}
        )
        assert inline.name == "custom"
        assert EventSchedule.from_spec(inline) is inline

    def test_from_spec_rejects_unknown_keys_and_types(self):
        with pytest.raises(FaultSpecError, match="unknown fault-schedule key"):
            EventSchedule.from_spec({"event": []})
        with pytest.raises(FaultSpecError, match="profile name, mapping"):
            EventSchedule.from_spec(42)

    def test_materialize_resolves_fractions_against_horizon(self):
        schedule = EventSchedule(events=(
            {"kind": "link_down", "at_frac": 0.5, "duration_frac": 0.25},
        ))
        [event] = schedule.materialize(seed=1, horizon_ns=1_000_000)
        assert event.at_ns == 500_000
        assert event.duration_ns == 250_000

    def test_materialize_drops_events_beyond_horizon(self):
        schedule = EventSchedule(events=(
            {"kind": "link_down", "at_us": 2_000},
            {"kind": "link_down", "at_us": 100},
        ))
        events = schedule.materialize(seed=1, horizon_ns=1_000_000)
        assert [event.at_ns for event in events] == [100_000]

    def test_generator_expansion_is_seed_deterministic(self):
        schedule = EventSchedule(generators=(
            {"kind": "backend_churn", "period_frac": 0.2, "jitter": 0.5},
        ))
        first = schedule.materialize(seed=9, horizon_ns=10_000_000)
        again = schedule.materialize(seed=9, horizon_ns=10_000_000)
        other = schedule.materialize(seed=10, horizon_ns=10_000_000)
        assert [event.at_ns for event in first] == [event.at_ns for event in again]
        assert [event.at_ns for event in first] != [event.at_ns for event in other]
        assert len(first) == 4  # one period in, every fifth of the horizon

    def test_generator_repeat_caps_firings(self):
        schedule = EventSchedule(generators=(
            {"kind": "backend_churn", "period_frac": 0.1, "repeat": 2},
        ))
        assert len(schedule.materialize(seed=0, horizon_ns=10_000_000)) == 2

    def test_generator_validation(self):
        with pytest.raises(FaultSpecError, match="period_us"):
            EventSchedule(generators=({"kind": "backend_churn"},))
        with pytest.raises(FaultSpecError, match="jitter"):
            EventSchedule(generators=(
                {"kind": "backend_churn", "period_frac": 0.2, "jitter": 2.0},
            ))
        with pytest.raises(FaultSpecError, match="unknown key"):
            EventSchedule(generators=(
                {"kind": "backend_churn", "period_frac": 0.2, "wat": 1},
            ))

    def test_roundtrip_to_dict(self):
        schedule = get_fault_profile("chaos-mix")
        clone = EventSchedule.from_spec(schedule.to_dict())
        assert clone == schedule

    def test_zero_resolved_period_raises_instead_of_looping(self):
        # A sub-nanosecond period_us (or a period_frac of a tiny horizon)
        # truncates to 0 ns, which would never advance the firing cursor.
        schedule = EventSchedule(generators=(
            {"kind": "backend_churn", "period_us": 0.0004},
        ))
        with pytest.raises(FaultSpecError, match="at least 1 ns"):
            schedule.materialize(seed=1, horizon_ns=1_000)
        tiny = EventSchedule(generators=(
            {"kind": "backend_churn", "period_frac": 0.25},
        ))
        with pytest.raises(FaultSpecError, match="at least 1 ns"):
            tiny.materialize(seed=1, horizon_ns=3)

    def test_negative_durations_rejected_everywhere(self):
        with pytest.raises(FaultSpecError, match="duration_us"):
            validate_event_record(
                {"kind": "link_down", "at_frac": 0.3, "duration_us": -5}
            )
        with pytest.raises(FaultSpecError, match="duration_frac"):
            EventSchedule(generators=(
                {"kind": "link_loss", "period_frac": 0.2, "probability": 0.1,
                 "duration_frac": -0.1},
            ))

    def test_from_spec_tolerates_empty_yaml_keys(self):
        # YAML 'events:' with no value parses to None; that must be a
        # domain error (or empty), never a bare TypeError traceback.
        schedule = EventSchedule.from_spec(
            {"events": None, "generators": [
                {"kind": "backend_churn", "period_frac": 0.2},
            ]}
        )
        assert schedule.events == ()
        with pytest.raises(FaultSpecError, match="lists of mappings"):
            EventSchedule.from_spec({"events": "link_down"})

    def test_unknown_link_selector_rejected_at_spec_time(self):
        with pytest.raises(FaultSpecError, match="unknown link selector"):
            validate_event_record(
                {"kind": "link_down", "at_us": 1, "link": "sevrer"}
            )
        with pytest.raises(FaultSpecError, match="unknown link selector"):
            validate_event_record(
                {"kind": "link_loss", "at_us": 1, "probability": 0.1, "link": "genx"}
            )
        validate_event_record({"kind": "link_down", "at_us": 1, "link": "gen7"})


class TestRegistry:
    def test_every_profile_builds_and_materializes(self):
        for name in fault_profile_names():
            schedule = get_fault_profile(name)
            events = schedule.materialize(seed=3, horizon_ns=6_000_000)
            assert events, f"profile {name} materialized no events"
            assert all(event.at_ns < 6_000_000 for event in events)

    def test_unknown_profile_and_duplicate_registration(self):
        with pytest.raises(FaultSpecError, match="unknown fault profile"):
            get_fault_profile("nope")
        existing = fault_profile_names()[0]
        with pytest.raises(FaultSpecError, match="already registered"):
            register_fault_profile(existing, FAULT_REGISTRY[existing])


class TestLinkFaults:
    def test_downed_link_drops_and_counts(self):
        env = EventLoop()
        link, a, b = _wired_link(env)
        link.set_up(False)
        assert not link.is_up
        link.transmit(_frame(), a)
        env.run_all()
        assert b.received == 0
        assert link.fault_drops() == 1
        assert link.buffer_drops() == 0
        assert link.total_drops() == 1
        link.set_up(True)
        link.transmit(_frame(), a)
        env.run_all()
        assert b.received == 1

    def test_loss_window_is_seeded_and_clearable(self):
        def run(seed):
            env = EventLoop()
            link, a, b = _wired_link(env)
            link.set_loss(0.5, seed=seed)
            for _ in range(200):
                link.transmit(_frame(), a)
            env.run_all()
            return b.received, link.fault_drops()

        received, dropped = run(7)
        assert received + dropped == 200
        assert 0 < dropped < 200
        assert run(7) == (received, dropped)  # same seed, same pattern
        assert run(8) != (received, dropped)

        env = EventLoop()
        link, a, b = _wired_link(env)
        link.set_loss(1.0, seed=1)
        link.set_loss(0.0)  # close the window
        link.transmit(_frame(), a)
        env.run_all()
        assert b.received == 1

    def test_jitter_window_delays_arrivals(self):
        env = EventLoop()
        link, a, b = _wired_link(env, propagation_delay_ns=500)
        link.set_jitter(10_000, seed=3)
        link.transmit(_frame(), a)
        env.run_all()
        assert b.received == 1
        assert env.now > 500  # extra propagation beyond the base delay
        link.set_jitter(0)
        assert link._a_to_b.jitter_ns == 0

    def test_jitter_never_reorders_the_wire(self):
        # A wire is FIFO: per-frame jitter delays arrivals but can never
        # deliver frame N+1 before frame N.
        class _OrderSink(Node):
            def __init__(self, env):
                super().__init__(env, "ordersink")
                self.arrival_times = []

            def handle_packet(self, packet, port):
                self.arrival_times.append((self.env.now, packet.meta["seq"]))

        env = EventLoop()
        a = _Sink(env, "a")
        b = _OrderSink(env)
        link = Link(env, a, 0, b, 0, propagation_delay_ns=500)
        link.set_jitter(50_000, seed=11)
        for seq in range(100):
            frame = _frame()
            frame.meta["seq"] = seq
            link.transmit(frame, a)
        env.run_all()
        sequences = [seq for _when, seq in b.arrival_times]
        times = [when for when, _seq in b.arrival_times]
        assert sequences == sorted(sequences)
        assert times == sorted(times)

    def test_loss_probability_bounds(self):
        env = EventLoop()
        link, _a, _b = _wired_link(env)
        with pytest.raises(ValueError):
            link.set_loss(1.5)
        with pytest.raises(ValueError):
            link.set_jitter(-1)

    def test_reset_stats_clears_counters_not_live_state(self):
        env = EventLoop()
        link, a, b = _wired_link(env, buffer_bytes=600)
        link.transmit(_frame(), a)
        link.transmit(_frame(), a)  # overflows the 600-byte buffer
        link.set_up(False)
        link.transmit(_frame(), a)
        assert link.total_drops() == 2
        link.reset_stats()
        assert link.total_drops() == 0
        assert link.stats()["a_to_b_sent"] == 0
        # Live transmit state survives: the queued frame still drains.
        env.run_all()
        assert b.received == 1


def _pp_program():
    binding = NfServerBinding(
        name="srv0", ingress_ports=(0, 1), nf_port=2, default_egress_port=0
    )
    return PayloadParkProgram(
        PayloadParkConfig(sram_fraction=0.1, expiry_threshold=1), bindings=[binding]
    )


def _occupy_slots(program, count):
    """Park synthetic payloads directly through the control plane."""
    from repro.core.lookup_table import MetadataEntry

    table = program.lookup_table("srv0")
    counters = program.counters_for("srv0")
    for index in range(count):
        table.metadata.poke(index, MetadataEntry(clk=1, exp=1))
        table.block_arrays[0].poke(index, b"payload")
        counters.splits += 1
    return table, counters


class TestControlPlaneManager:
    def test_expiry_threshold_is_payloadpark_only(self):
        manager = ControlPlaneManager(_pp_program())
        assert manager.is_payloadpark
        assert manager.set_expiry_threshold(5)
        assert manager.program.config.expiry_threshold == 5

        binding = NfServerBinding(
            name="srv0", ingress_ports=(0, 1), nf_port=2, default_egress_port=0
        )
        baseline = ControlPlaneManager(BaselineProgram([binding]))
        assert not baseline.is_payloadpark
        assert not baseline.set_expiry_threshold(5)

    def test_drain_parked_accounts_evictions_and_clears_payload(self):
        program = _pp_program()
        table, counters = _occupy_slots(program, 4)
        manager = ControlPlaneManager(program)
        drained = manager.drain_parked(fraction=0.5)
        assert drained == {"srv0": 2}
        assert counters.evictions == 2
        assert table.occupancy() == 2
        # The dataplane identity holds: outstanding == occupied.
        assert counters.outstanding_payloads == table.occupancy()
        # Drained slots were fully reclaimed: metadata free AND blocks empty.
        assert table.peek_payload(0) == b""
        assert not table.peek_metadata(0).occupied

    def test_drain_fraction_validation(self):
        with pytest.raises(ValueError, match="fraction"):
            ControlPlaneManager(_pp_program()).drain_parked(fraction=0.0)

    def test_reset_clears_link_counters_regression(self):
        # Regression: resetting a shared deployment between back-to-back
        # runs must clear the Link drop/occupancy counters too, or the
        # second run starts with the first run's drops on its books.
        env = EventLoop()
        link, a, _b = _wired_link(env, buffer_bytes=600)
        program = _pp_program()
        _occupy_slots(program, 2)

        class _Topo:
            class _Attachment:
                pass

            def __init__(self):
                attachment = self._Attachment()
                attachment.gen_links = [link]
                attachment.server_link = link
                self.attachments = [attachment]

        manager = ControlPlaneManager(program, _Topo())
        link.transmit(_frame(), a)
        link.transmit(_frame(), a)  # buffer overflow drop
        assert link.total_drops() == 1
        assert link.stats()["a_to_b_sent"] == 1
        manager.reset()
        assert link.total_drops() == 0
        assert link.stats()["a_to_b_sent"] == 0
        assert link.stats()["a_to_b_bytes"] == 0
        assert program.lookup_table("srv0").occupancy() == 0
        assert program.counters_for("srv0").splits == 0


class TestInjectorUnits:
    def _topology(self, chain="fw_nat_lb"):
        from repro.experiments.runner import (
            DeploymentKind,
            ExperimentRunner,
            ScenarioConfig,
        )
        from repro.experiments import chains

        factories = {"fw_nat_lb": chains.fw_nat_lb(rule_count=3),
                     "fw_nat": chains.fw_nat(rule_count=1)}
        scenario = ScenarioConfig(name="unit", chain_factory=factories[chain],
                                  faults=None)
        runner = ExperimentRunner()
        env_holder = {}

        class _Grab(Exception):
            pass

        import repro.experiments.runner as runner_module
        original = runner_module.ExperimentRunner._execute

        def grab(self, scenario, deployment, topology, program):
            env_holder["topology"] = topology
            env_holder["program"] = program
            raise _Grab

        runner_module.ExperimentRunner._execute = grab
        try:
            with pytest.raises(_Grab):
                runner.run_deployment(scenario, DeploymentKind.PAYLOADPARK)
        finally:
            runner_module.ExperimentRunner._execute = original
        return env_holder["topology"], env_holder["program"]

    def test_link_selector_resolution(self):
        topology, program = self._topology()
        schedule = EventSchedule(events=({"kind": "link_down", "at_frac": 0.1},))
        injector = FaultInjectorNode(topology.env, topology, program, schedule)
        attachment = topology.attachments[0]
        assert injector._select_links({"link": "server"}) == [attachment.server_link]
        assert injector._select_links({"link": "gen"}) == attachment.gen_links
        assert injector._select_links({"link": "gen1"}) == [attachment.gen_links[1]]
        assert injector._select_links({"link": "all"}) == (
            [attachment.server_link] + attachment.gen_links
        )
        with pytest.raises(FaultSpecError, match="matched nothing"):
            injector._select_links({"link": "uplink7"})
        # Well-formed selectors that match no link fail loudly too: a
        # silently no-op'd fault event would fake chaos coverage.
        with pytest.raises(FaultSpecError, match="matched no link"):
            injector._select_links({"link": "server", "binding": "nf-typo"})
        with pytest.raises(FaultSpecError, match="matched no link"):
            injector._select_links({"link": "gen9"})

    def test_firewall_churn_adds_then_removes_own_rules(self):
        from repro.faults.events import FaultEvent
        from repro.nf.firewall import Firewall

        topology, program = self._topology()
        schedule = EventSchedule(events=({"kind": "link_down", "at_frac": 0.1},))
        injector = FaultInjectorNode(topology.env, topology, program, schedule)
        [(server, firewall)] = injector._nfs_of_type(Firewall)
        before = list(firewall.rules)
        injector.apply_event(FaultEvent("firewall_churn", 0, {"action": "add", "count": 3}))
        assert len(firewall.rules) == len(before) + 3
        injector.apply_event(
            FaultEvent("firewall_churn", 0, {"action": "remove", "count": 3})
        )
        assert firewall.rules == before
        assert injector.rules_added == 3 and injector.rules_removed == 3

    def test_backend_churn_never_empties_the_pool(self):
        from repro.faults.events import FaultEvent
        from repro.nf.loadbalancer import MaglevLoadBalancer

        topology, program = self._topology()
        schedule = EventSchedule(events=({"kind": "link_down", "at_frac": 0.1},))
        injector = FaultInjectorNode(topology.env, topology, program, schedule)
        [(_server, lb)] = injector._nfs_of_type(MaglevLoadBalancer)
        pool = len(lb.backends)
        injector.apply_event(
            FaultEvent("backend_churn", 0, {"action": "remove", "count": pool + 5})
        )
        assert len(lb.backends) == 1  # drained down to the floor, never empty
        injector.apply_event(FaultEvent("backend_churn", 0, {"action": "add", "count": 2}))
        assert len(lb.backends) == 3
        assert injector.backends_added == 2

    def test_overlapping_down_windows_nest(self):
        from repro.faults.events import FaultEvent

        topology, program = self._topology()
        schedule = EventSchedule(events=({"kind": "link_down", "at_frac": 0.1},))
        injector = FaultInjectorNode(topology.env, topology, program, schedule)
        env = topology.env
        link = topology.attachments[0].server_link
        # Window 1: [now, +100]; window 2: [+50, +200].  Window 1's close
        # at +100 must NOT bring the link up mid-window-2.
        injector.apply_event(
            FaultEvent("link_down", 0, {"duration_ns": 100, "link": "server"})
        )
        env.run_until(50)
        injector.apply_event(
            FaultEvent("link_down", 0, {"duration_ns": 200, "link": "server"},
                       sequence=1)
        )
        env.run_until(150)
        assert not link.is_up  # window 1 closed, window 2 still covers the link
        env.run_until(300)
        assert link.is_up

    def test_explicit_link_up_cancels_pending_window_closures(self):
        from repro.faults.events import FaultEvent

        topology, program = self._topology()
        schedule = EventSchedule(events=({"kind": "link_down", "at_frac": 0.1},))
        injector = FaultInjectorNode(topology.env, topology, program, schedule)
        env = topology.env
        link = topology.attachments[0].server_link
        # Window 1: [0, +100]; explicit up at +20; window 2: [+30, +130].
        # Window 1's stale back_up at +100 must not end window 2 early.
        injector.apply_event(FaultEvent(
            "link_down", 0, {"duration_ns": 100, "link": "server"}, sequence=0))
        env.run_until(20)
        injector.apply_event(FaultEvent("link_up", 0, {"link": "server"}))
        assert link.is_up
        env.run_until(30)
        injector.apply_event(FaultEvent(
            "link_down", 0, {"duration_ns": 100, "link": "server"}, sequence=1))
        env.run_until(110)
        assert not link.is_up  # stale closure from window 1 was cancelled
        env.run_until(200)
        assert link.is_up

    def test_overlapping_loss_windows_latest_wins(self):
        from repro.faults.events import FaultEvent

        topology, program = self._topology()
        schedule = EventSchedule(events=({"kind": "link_down", "at_frac": 0.1},))
        injector = FaultInjectorNode(topology.env, topology, program, schedule)
        env = topology.env
        link = topology.attachments[0].server_link
        injector.apply_event(FaultEvent(
            "link_loss", 0, {"probability": 0.2, "duration_ns": 100,
                             "link": "server"}, sequence=0))
        env.run_until(50)
        injector.apply_event(FaultEvent(
            "link_loss", 0, {"probability": 0.5, "duration_ns": 200,
                             "link": "server"}, sequence=1))
        env.run_until(150)
        # Window 1's close fired at +100 but window 2 re-armed the link.
        assert link._a_to_b.loss_probability == 0.5
        env.run_until(300)
        assert link._a_to_b.loss_probability == 0.0

    def test_scenario_config_rejects_bad_profile_at_run_time(self):
        from repro.experiments.runner import (
            DeploymentKind,
            ExperimentRunner,
            ScenarioConfig,
        )

        scenario = ScenarioConfig(name="bad", faults="no-such-profile",
                                  duration_us=100.0, warmup_us=20.0)
        with pytest.raises(FaultSpecError, match="unknown fault profile"):
            ExperimentRunner().run_deployment(scenario, DeploymentKind.BASELINE)
