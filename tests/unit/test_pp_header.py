"""Unit tests for the PayloadPark header, counters and configuration."""

import pytest

from repro.core.config import NfServerBinding, PayloadParkConfig
from repro.core.counters import CounterBank, PayloadParkCounters
from repro.core.header import OP_EXPLICIT_DROP, OP_MERGE, PayloadParkHeader


class TestPayloadParkHeader:
    def test_wire_length_is_seven_bytes(self):
        header = PayloadParkHeader(enb=1, tbl_idx=10, clk=20).seal()
        assert header.byte_length() == 7
        assert len(header.to_bytes()) == 7

    def test_round_trip(self):
        header = PayloadParkHeader(enb=1, op=OP_EXPLICIT_DROP, tbl_idx=511, clk=42).seal()
        parsed = PayloadParkHeader.from_bytes(header.to_bytes())
        assert parsed == header

    def test_crc_validates_tag(self):
        header = PayloadParkHeader(enb=1, tbl_idx=7, clk=9).seal()
        assert header.tag_is_valid()
        header.tbl_idx = 8
        assert not header.tag_is_valid()

    def test_disabled_header_is_all_zero(self):
        header = PayloadParkHeader.disabled()
        assert header.enb == 0
        assert header.to_bytes() == b"\x00" * 7

    def test_rejects_out_of_range_fields(self):
        with pytest.raises(ValueError):
            PayloadParkHeader(enb=2)
        with pytest.raises(ValueError):
            PayloadParkHeader(tbl_idx=1 << 16)
        with pytest.raises(ValueError):
            PayloadParkHeader(clk=-1)

    def test_from_bytes_rejects_short_input(self):
        with pytest.raises(ValueError):
            PayloadParkHeader.from_bytes(b"\x00" * 6)

    def test_copy_is_independent(self):
        header = PayloadParkHeader(enb=1, tbl_idx=1, clk=2).seal()
        clone = header.copy()
        clone.op = OP_EXPLICIT_DROP
        assert header.op == OP_MERGE


class TestCounters:
    def test_split_attempts_and_outstanding(self):
        counters = PayloadParkCounters(
            splits=10, merges=6, evictions=1, explicit_drops=1,
            split_disabled_small_payload=3, split_disabled_table_occupied=2,
        )
        assert counters.split_attempts == 15
        assert counters.outstanding_payloads == 2

    def test_reset_zeroes_everything(self):
        counters = PayloadParkCounters(splits=3, merges=2)
        counters.reset()
        assert counters.as_dict() == PayloadParkCounters().as_dict()

    def test_counter_bank_aggregation(self):
        bank = CounterBank()
        bank.for_binding("a").splits = 4
        bank.for_binding("b").splits = 6
        bank.for_binding("b").premature_evictions = 1
        total = bank.total()
        assert total.splits == 10
        assert total.premature_evictions == 1


class TestConfig:
    def test_payload_blocks_rounds_up(self):
        config = PayloadParkConfig(parked_bytes=170, payload_block_bytes=16)
        assert config.payload_blocks == 11

    def test_recirculation_constructor(self):
        config = PayloadParkConfig.with_recirculation()
        assert config.parked_bytes == 384
        assert config.enable_recirculation
        assert config.requires_recirculation(payload_stage_count=10)

    def test_default_does_not_require_recirculation(self):
        config = PayloadParkConfig()
        assert not config.requires_recirculation(payload_stage_count=10)

    def test_derived_table_entries_scale_with_fraction_and_share(self):
        config = PayloadParkConfig(sram_fraction=0.5, payload_block_bytes=16)
        full = config.derived_table_entries(stage_sram_bytes=32_768)
        half = config.derived_table_entries(stage_sram_bytes=32_768, memory_weight_share=0.5)
        assert full == 1024
        assert half == 512

    def test_explicit_table_entries_override(self):
        config = PayloadParkConfig(table_entries=100)
        assert config.derived_table_entries(stage_sram_bytes=32_768) == 100

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            PayloadParkConfig(expiry_threshold=0)
        with pytest.raises(ValueError):
            PayloadParkConfig(sram_fraction=0.0)
        with pytest.raises(ValueError):
            PayloadParkConfig(parked_bytes=0)
        with pytest.raises(ValueError):
            PayloadParkConfig(table_entries=-1)


class TestBinding:
    def test_binding_validation(self):
        with pytest.raises(ValueError):
            NfServerBinding(name="x", ingress_ports=(), nf_port=2, default_egress_port=0)
        with pytest.raises(ValueError):
            NfServerBinding(name="x", ingress_ports=(2,), nf_port=2, default_egress_port=0)
        with pytest.raises(ValueError):
            NfServerBinding(
                name="x", ingress_ports=(0,), nf_port=2, default_egress_port=0, memory_weight=0
            )
