"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestCli:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_run_executes_cheap_experiment(self, capsys):
        assert main(["run", "table1"]) == 0
        output = capsys.readouterr().out
        assert "Packet Header Vector" in output

    def test_run_fig06(self, capsys):
        assert main(["run", "fig06"]) == 0
        assert "packet_size_bytes" in capsys.readouterr().out

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_parser_has_quickstart_rate_option(self):
        parser = build_parser()
        args = parser.parse_args(["quickstart", "--rate", "8.5"])
        assert args.rate == 8.5

    def test_registry_covers_every_figure_and_table(self):
        expected = {f"fig{number:02d}" for number in range(6, 17)} | {"table1", "equivalence"}
        assert expected == set(EXPERIMENTS)
