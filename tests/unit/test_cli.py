"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, JSON_RUNNERS, build_parser, main


class TestCli:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_run_executes_cheap_experiment(self, capsys):
        assert main(["run", "table1"]) == 0
        output = capsys.readouterr().out
        assert "Packet Header Vector" in output

    def test_run_fig06(self, capsys):
        assert main(["run", "fig06"]) == 0
        assert "packet_size_bytes" in capsys.readouterr().out

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_parser_has_quickstart_rate_option(self):
        parser = build_parser()
        args = parser.parse_args(["quickstart", "--rate", "8.5"])
        assert args.rate == 8.5

    def test_registry_covers_every_figure_and_table(self):
        expected = {f"fig{number:02d}" for number in range(6, 17)} | {
            "table1", "equivalence", "chaos",
        }
        assert expected == set(EXPERIMENTS)

    def test_json_runners_cover_every_experiment(self):
        assert set(JSON_RUNNERS) == set(EXPERIMENTS)

    def test_run_json_emits_parseable_payload(self, capsys):
        assert main(["run", "table1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "table1"
        assert isinstance(payload["result"], list)

    def test_run_json_seed_is_reproducible_and_plumbed(self, capsys):
        from repro.experiments import fig06_packet_size_cdf

        assert main(["run", "fig06", "--json", "--seed", "3"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["run", "fig06", "--json", "--seed", "3"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second
        direct = fig06_packet_size_cdf.run(seed=3)
        assert first["result"]["sampled_mean_bytes"] == direct["sampled_mean_bytes"]

    def test_seed_flag_changes_scenario_default_seed(self):
        from repro.experiments.runner import ScenarioConfig, default_seed

        assert ScenarioConfig(name="x").seed == 42
        with default_seed(7):
            assert ScenarioConfig(name="x").seed == 7
        assert ScenarioConfig(name="x").seed == 42


class TestCampaignCli:
    def _write_spec(self, tmp_path, time_scale=0.05):
        spec = {
            "name": "cli-grid",
            "scenario": "fw_nat_lb_10ge",
            "grid": {"send_rate_gbps": [4.0, 8.0]},
            "time_scale": time_scale,
        }
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(spec))
        return path

    def test_campaign_run_status_report_cycle(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path)
        store = tmp_path / "results.jsonl"

        assert main(["campaign", "run", str(spec), "--store", str(store), "--serial"]) == 0
        out = capsys.readouterr().out
        assert "2 executed" in out and "0 skipped" in out
        assert store.exists()
        assert len(store.read_text().strip().splitlines()) == 2

        # Resume: everything is already done.
        assert main(["campaign", "run", str(spec), "--store", str(store), "--serial"]) == 0
        assert "0 executed" in capsys.readouterr().out and \
            len(store.read_text().strip().splitlines()) == 2

        assert main(["campaign", "status", str(spec), "--store", str(store)]) == 0
        status = capsys.readouterr().out
        assert "completed: 2" in status and "pending:   0" in status

        assert main(["campaign", "report", str(spec), "--store", str(store),
                     "--columns", "goodput_gain_percent", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row["send_rate_gbps"] for row in payload["rows"]] == [4.0, 8.0]
        assert all("goodput_gain_percent" in row for row in payload["rows"])

    def test_sharded_report_is_byte_identical_to_single_shard(self, tmp_path, capsys):
        """Acceptance: a sharded store reproduces the exact `campaign
        report` output of the single-shard baseline."""
        spec = self._write_spec(tmp_path)
        single = tmp_path / "single.jsonl"
        sharded = tmp_path / "sharded.jsonl"

        assert main(["campaign", "run", str(spec), "--store", str(single),
                     "--serial", "--no-bus"]) == 0
        capsys.readouterr()
        assert main(["campaign", "run", str(spec), "--store", str(sharded),
                     "--shards", "3", "--serial", "--no-bus"]) == 0
        capsys.readouterr()
        assert not sharded.exists()  # records live in the shard files
        assert sorted(tmp_path.glob("sharded.shard-*.jsonl"))

        assert main(["campaign", "report", str(spec), "--store", str(single)]) == 0
        baseline = capsys.readouterr().out
        assert main(["campaign", "report", str(spec), "--store", str(sharded)]) == 0
        assert capsys.readouterr().out == baseline
        assert "send_rate_gbps" in baseline

        # `status` agrees too, modulo the store path/shards lines.
        assert main(["campaign", "status", str(spec), "--store", str(sharded)]) == 0
        status = capsys.readouterr().out
        assert "completed: 2" in status and "pending:   0" in status

    def test_status_reports_exhausted_cells(self, tmp_path, capsys):
        from repro.orchestrator import CampaignSpec, ResultStore

        spec = self._write_spec(tmp_path)
        store = tmp_path / "results.jsonl"
        campaign = CampaignSpec.from_file(spec)
        first, second = campaign.expand()
        result_store = ResultStore(store)
        result_store.append(
            {"spec_hash": first.spec_hash, "status": "ok", "metrics": {}}
        )
        result_store.append(
            {
                "spec_hash": second.spec_hash,
                "status": "exhausted",
                "attempts": 3,
                "error": "retry budget exhausted after 3 failed attempt(s)",
            }
        )
        assert main(["campaign", "status", str(spec), "--store", str(store)]) == 0
        status = capsys.readouterr().out
        assert "completed: 2" not in status
        assert "completed: 1" in status
        assert "pending:   0" in status
        assert "exhausted: 1" in status

    def test_campaign_report_without_records(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path)
        assert main(["campaign", "report", str(spec),
                     "--store", str(tmp_path / "empty.jsonl")]) == 0
        assert "no completed records" in capsys.readouterr().out

    def test_campaign_without_subcommand_shows_help(self, capsys):
        assert main(["campaign"]) == 1
        assert "usage" in capsys.readouterr().out.lower()


class TestWorkloadCli:
    def test_list_prints_every_workload(self, capsys):
        from repro.workloads import workload_names

        assert main(["workload", "list"]) == 0
        output = capsys.readouterr().out
        for name in workload_names():
            assert name in output

    def test_list_names_is_plain(self, capsys):
        from repro.workloads import workload_names

        assert main(["workload", "list", "--names"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines == workload_names()

    def test_describe_shows_composition(self, capsys):
        assert main(["workload", "describe", "bursty-mmpp"]) == 0
        output = capsys.readouterr().out
        assert "mmpp" in output and "arrivals" in output

    def test_preview_prints_summary_table(self, capsys):
        assert main(["workload", "preview", "flood-churn", "--packets", "200"]) == 0
        output = capsys.readouterr().out
        assert "mean_rate_gbps" in output and "small_packet_fraction" in output

    def test_preview_json_is_seed_reproducible(self, capsys):
        argv = ["workload", "preview", "incast-sync", "--packets", "300",
                "--seed", "5", "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second
        assert first["seed"] == 5
        assert first["summary"]["packets"] == 300

    def test_preview_renders_closed_loop_transport_state(self, capsys):
        assert main(["workload", "preview", "incast-collapse", "--packets", "300"]) == 0
        output = capsys.readouterr().out
        assert "closed-loop transport" in output
        assert "min_rto_us" in output and "modeled_rounds" in output

    def test_preview_json_carries_transport_block(self, capsys):
        assert main(["workload", "preview", "rpc-fanout", "--packets", "200",
                     "--seed", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["transport"]["flows"] == 16
        assert payload["transport"]["sync_epochs"] is False

    def test_preview_open_loop_has_no_transport_block(self, capsys):
        assert main(["workload", "preview", "incast-sync", "--packets", "200",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "transport" not in payload

    def test_describe_closed_loop_names_the_transport(self, capsys):
        assert main(["workload", "describe", "incast-collapse"]) == 0
        output = capsys.readouterr().out
        assert "NewReno" in output and "synchronized barrier" in output

    def test_preview_rate_rescales(self, capsys):
        assert main(["workload", "preview", "enterprise-poisson", "--packets",
                     "2000", "--rate", "16", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert abs(payload["summary"]["mean_rate_gbps"] - 16.0) / 16.0 < 0.2

    def test_preview_unknown_workload_errors(self, capsys):
        assert main(["workload", "preview", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_preview_rejects_nonpositive_rate_and_packets(self, capsys):
        assert main(["workload", "preview", "enterprise-poisson", "--rate", "0"]) == 2
        assert "--rate" in capsys.readouterr().err
        assert main(["workload", "preview", "enterprise-poisson", "--rate", "-5"]) == 2
        capsys.readouterr()
        assert main(["workload", "preview", "enterprise-poisson", "--packets", "0"]) == 2
        assert "--packets" in capsys.readouterr().err

    def test_preview_custom_pcap(self, tmp_path, capsys):
        from repro.packet.pcap import write_pcap
        from repro.workloads import synthetic_enterprise_capture

        records = synthetic_enterprise_capture(32, seed=9)
        path = tmp_path / "cap.pcap"
        write_pcap(path, [(r.timestamp, r.data) for r in records])
        assert main(["workload", "preview", "pcap-replay", "--pcap", str(path),
                     "--packets", "32", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["packets"] == 32
        # --pcap is rejected for generative workloads.
        assert main(["workload", "preview", "flood-churn", "--pcap", str(path)]) == 2

    def test_workload_without_subcommand_shows_help(self, capsys):
        assert main(["workload"]) == 1
        assert "usage" in capsys.readouterr().out.lower()


class TestFaultsCli:
    def test_list_prints_every_profile(self, capsys):
        from repro.faults import fault_profile_names

        assert main(["faults", "list"]) == 0
        output = capsys.readouterr().out
        for name in fault_profile_names():
            assert name in output

    def test_list_names_is_plain(self, capsys):
        from repro.faults import fault_profile_names

        assert main(["faults", "list", "--names"]) == 0
        assert capsys.readouterr().out.strip().splitlines() == fault_profile_names()

    def test_describe_shows_events(self, capsys):
        assert main(["faults", "describe", "link-flap"]) == 0
        output = capsys.readouterr().out
        assert "link_down" in output and "description" in output

    def test_preview_prints_timeline(self, capsys):
        assert main(["faults", "preview", "chaos-mix", "--horizon-us", "6000"]) == 0
        output = capsys.readouterr().out
        assert "at_us" in output and "backend_churn" in output

    def test_preview_json_is_seed_reproducible(self, capsys):
        argv = ["faults", "preview", "lossy-links", "--horizon-us", "6000",
                "--seed", "3", "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second
        assert first["events"], "preview materialized no events"
        assert all(event["kind"] == "link_loss" for event in first["events"])

    def test_preview_unknown_profile_errors(self, capsys):
        assert main(["faults", "preview", "nope"]) == 2
        assert "unknown fault profile" in capsys.readouterr().err

    def test_preview_rejects_nonpositive_horizon(self, capsys):
        assert main(["faults", "preview", "link-flap", "--horizon-us", "0"]) == 2
        assert "--horizon-us" in capsys.readouterr().err

    def test_run_rejects_unknown_fault_profile(self, capsys):
        assert main(["run", "table1", "--faults", "nope"]) == 2
        assert "unknown fault profile" in capsys.readouterr().err

    def test_faults_without_subcommand_shows_help(self, capsys):
        assert main(["faults"]) == 1
        assert "usage" in capsys.readouterr().out.lower()
