"""Unit tests for the workload subsystem: arrivals, flows, registry, replay."""

import random
import statistics

import pytest

from repro.errors import WorkloadSpecError
from repro.traffic.distributions import FixedSizeDistribution
from repro.workloads import (
    ChurnFlows,
    GenerativeWorkload,
    HeavyTailFlows,
    IncastArrivals,
    MMPPArrivals,
    PcapReplayWorkload,
    PoissonArrivals,
    RoundRobinFlows,
    UniformArrivals,
    get_workload,
    register_workload,
    summarize,
    synthetic_enterprise_capture,
    workload_names,
)
from repro.workloads.registry import WORKLOAD_REGISTRY

TARGET_GAP_NS = 1_000.0


def _gaps(model, count=4000, seed=1):
    sampler = model.sampler(random.Random(seed))
    return [sampler.next_gap_ns(TARGET_GAP_NS) for _ in range(count)]


class TestArrivalModels:
    def test_uniform_is_deterministic(self):
        assert set(_gaps(UniformArrivals(), count=10)) == {TARGET_GAP_NS}

    @pytest.mark.parametrize(
        "model",
        [
            PoissonArrivals(),
            MMPPArrivals(),
            IncastArrivals(),
        ],
    )
    def test_long_run_mean_preserved(self, model):
        # MMPP needs many state cycles (residence=64 events) to converge.
        gaps = _gaps(model, count=30_000)
        assert statistics.mean(gaps) == pytest.approx(TARGET_GAP_NS, rel=0.10)

    def test_poisson_cv_near_one(self):
        gaps = _gaps(PoissonArrivals())
        cv = statistics.pstdev(gaps) / statistics.mean(gaps)
        assert cv == pytest.approx(1.0, abs=0.1)

    def test_mmpp_mean_preserved_with_silent_off_state(self):
        # on_fraction * burst_factor == 1 makes the OFF state emit
        # nothing; the sampler must model it as silent dwells, not run
        # permanently at the burst rate.
        model = MMPPArrivals(on_fraction=0.25, burst_factor=4.0)
        gaps = _gaps(model, count=60_000)
        assert statistics.mean(gaps) == pytest.approx(TARGET_GAP_NS, rel=0.15)

    def test_mmpp_burstier_than_poisson(self):
        mmpp = _gaps(MMPPArrivals(on_fraction=0.2, burst_factor=4.0))
        poisson = _gaps(PoissonArrivals())
        cv_mmpp = statistics.pstdev(mmpp) / statistics.mean(mmpp)
        cv_poisson = statistics.pstdev(poisson) / statistics.mean(poisson)
        assert cv_mmpp > cv_poisson

    def test_incast_epoch_structure(self):
        model = IncastArrivals(fan_in=8, duty=0.1)
        gaps = _gaps(model, count=16)
        small = TARGET_GAP_NS * 0.1
        # 7 compressed gaps, then one long silent gap, then repeat.
        assert gaps[:7] == [small] * 7
        assert gaps[7] > TARGET_GAP_NS
        assert gaps[8:15] == [small] * 7
        assert sum(gaps[:8]) == pytest.approx(8 * TARGET_GAP_NS)

    def test_fan_in_of_one_degenerates_to_uniform(self):
        # The degenerate edge: every "burst" is a single arrival, so
        # each gap is a closing gap of exactly one target — uniform
        # pacing, mean preserved, no off-by-one epoch arithmetic.
        gaps = _gaps(IncastArrivals(fan_in=1), count=32)
        assert set(gaps) == {TARGET_GAP_NS}

    def test_validation(self):
        with pytest.raises(WorkloadSpecError):
            MMPPArrivals(on_fraction=0.0)
        with pytest.raises(WorkloadSpecError):
            MMPPArrivals(on_fraction=0.5, burst_factor=3.0)  # 0.5*3 > 1
        with pytest.raises(WorkloadSpecError):
            MMPPArrivals(burst_factor=0.5)
        with pytest.raises(WorkloadSpecError):
            IncastArrivals(fan_in=0)
        with pytest.raises(WorkloadSpecError):
            IncastArrivals(duty=1.0)


class TestFlowModels:
    def test_round_robin_cycles(self):
        sampler = RoundRobinFlows(flow_count=4).sampler(random.Random(0))
        flows = [sampler.next_flow() for _ in range(8)]
        assert flows[:4] == flows[4:]
        assert len(set(flows[:4])) == 4

    def test_heavy_tail_concentrates_on_elephants(self):
        model = HeavyTailFlows(flow_count=1000, elephant_fraction=0.01, elephant_weight=0.9)
        sampler = model.sampler(random.Random(2))
        counts = {}
        for _ in range(5000):
            flow = sampler.next_flow()
            counts[flow] = counts.get(flow, 0) + 1
        top10 = sorted(counts.values(), reverse=True)[:10]
        assert sum(top10) / 5000 == pytest.approx(0.9, abs=0.05)

    def test_churn_never_repeats_tuples(self):
        sampler = ChurnFlows().sampler(random.Random(3))
        flows = [sampler.next_flow() for _ in range(2000)]
        assert len(set(flows)) == 2000

    def test_churn_flowlets(self):
        sampler = ChurnFlows(packets_per_flow=3).sampler(random.Random(3))
        flows = [sampler.next_flow() for _ in range(9)]
        assert flows[0] == flows[1] == flows[2]
        assert flows[3] == flows[4] == flows[5]
        assert flows[0] != flows[3]

    def test_validation(self):
        with pytest.raises(WorkloadSpecError):
            RoundRobinFlows(flow_count=0)
        with pytest.raises(WorkloadSpecError):
            HeavyTailFlows(elephant_fraction=1.5)
        with pytest.raises(WorkloadSpecError):
            ChurnFlows(packets_per_flow=0)


class TestRegistry:
    def test_required_workloads_present(self):
        names = workload_names()
        for required in (
            "bursty-mmpp",
            "incast-sync",
            "heavy-tail",
            "flood-churn",
            "rate-ramp",
            "pcap-replay",
        ):
            assert required in names
        assert len(names) >= 6

    def test_unknown_name_raises(self):
        with pytest.raises(WorkloadSpecError):
            get_workload("nope")

    def test_duplicate_registration_rejected(self):
        name = workload_names()[0]
        with pytest.raises(WorkloadSpecError):
            register_workload(name, WORKLOAD_REGISTRY[name])

    def test_lookups_return_fresh_specs(self):
        assert get_workload("bursty-mmpp") is not get_workload("bursty-mmpp")

    @pytest.mark.parametrize("name", sorted(WORKLOAD_REGISTRY))
    def test_trace_deterministic_for_seed(self, name):
        spec = get_workload(name)
        first = [p.as_tuple() for p in spec.trace(7, 64)]
        second = [p.as_tuple() for p in get_workload(name).trace(7, 64)]
        assert first == second
        assert len(first) == 64

    @pytest.mark.parametrize(
        "name", [n for n in sorted(WORKLOAD_REGISTRY) if n != "pcap-replay"]
    )
    def test_different_seeds_differ(self, name):
        spec = get_workload(name)
        first = [p.as_tuple() for p in spec.trace(7, 64)]
        second = [p.as_tuple() for p in spec.trace(8, 64)]
        assert first != second

    @pytest.mark.parametrize("name", sorted(WORKLOAD_REGISTRY))
    def test_summary_statistics_sane(self, name):
        summary = get_workload(name).summary(seed=11, max_packets=400)
        assert summary.packets == 400
        assert summary.mean_rate_gbps > 0
        assert 64 <= summary.mean_frame_bytes <= 1514
        assert 0.0 <= summary.small_packet_fraction <= 1.0
        assert summary.distinct_flows >= 1

    def test_workload_statistics_match_design(self):
        assert get_workload("flood-churn").summary(max_packets=300).small_packet_fraction == 1.0
        incast = get_workload("incast-sync").summary(max_packets=2000)
        poisson = get_workload("enterprise-poisson").summary(max_packets=2000)
        assert incast.burstiness_cv > poisson.burstiness_cv > 0.5

    def test_rate_rescaling_through_trace(self):
        spec = get_workload("enterprise-poisson")
        fast = summarize(spec.trace(5, 2000, rate_gbps=16.0))
        slow = summarize(spec.trace(5, 2000, rate_gbps=4.0))
        assert fast.mean_rate_gbps == pytest.approx(16.0, rel=0.15)
        assert slow.mean_rate_gbps == pytest.approx(4.0, rel=0.15)


class TestGenerativeWorkload:
    def test_needs_size_distribution(self):
        with pytest.raises(WorkloadSpecError):
            GenerativeWorkload(name="x", sizes=None)

    def test_packet_source_streams_frames(self):
        spec = GenerativeWorkload(name="x", sizes=FixedSizeDistribution(256))
        source = spec.packet_source(seed=3)
        packet = source.next_packet()
        assert packet.wire_length == 256
        assert source.packets_built == 1

    def test_classic_workload_view(self):
        spec = GenerativeWorkload(name="x", sizes=FixedSizeDistribution(256))
        workload = spec.workload()
        assert workload.name == "x"
        assert workload.mean_frame_bytes() == 256

    def test_traffic_model_carries_schedule_rescaled(self):
        spec = get_workload("rate-ramp")
        model = spec.traffic_model(rate_gbps=14.0)
        assert model.schedule is not None
        assert model.schedule.mean_gbps() == pytest.approx(14.0)

    def test_with_rate_rescales_traffic_model(self):
        # The peak-goodput search probes rates via ScenarioConfig.with_rate;
        # scheduled and replay workloads must follow the probed rate.
        from repro.experiments.scenarios import workload_scenario

        scenario = workload_scenario(workload="rate-ramp")
        probed = scenario.with_rate(3.5)
        assert probed.traffic_model.schedule.mean_gbps() == pytest.approx(3.5)

        replay = workload_scenario(workload="pcap-replay")
        spec = get_workload("pcap-replay")
        fast = replay.with_rate(spec.nominal_rate_gbps() * 2)
        native = list(replay.traffic_model.stream_factory(0))
        doubled = list(fast.traffic_model.stream_factory(0))
        assert doubled[-1][0] == pytest.approx(native[-1][0] / 2, rel=0.01)


class TestPcapReplay:
    def test_synthetic_capture_is_deterministic(self):
        first = synthetic_enterprise_capture(64, seed=5)
        second = synthetic_enterprise_capture(64, seed=5)
        assert [r.data for r in first] == [r.data for r in second]

    def test_from_file_round_trip(self, tmp_path):
        from repro.packet.pcap import write_pcap

        records = synthetic_enterprise_capture(32, seed=9)
        path = tmp_path / "cap.pcap"
        write_pcap(path, [(r.timestamp, r.data) for r in records])
        spec = PcapReplayWorkload.from_file(path)
        assert len(spec.records) == 32
        trace = spec.trace(0, 32)
        assert [p.size_bytes for p in trace] == [len(r.data) for r in records]

    def test_trace_loops_past_capture_length(self):
        spec = PcapReplayWorkload.synthetic(packet_count=16, seed=2)
        trace = spec.trace(0, 40)
        assert len(trace) == 40
        assert trace[16].size_bytes == trace[0].size_bytes
        times = [p.time_ns for p in trace]
        assert times == sorted(times)

    def test_rate_rescaling_changes_spacing(self):
        spec = PcapReplayWorkload.synthetic(packet_count=64, seed=2, rate_gbps=8.0)
        native = spec.trace(0, 64)
        doubled = spec.trace(0, 64, rate_gbps=16.0)
        assert doubled[-1].time_ns == pytest.approx(native[-1].time_ns / 2, rel=0.01)

    def test_rejects_empty_capture(self):
        with pytest.raises(WorkloadSpecError):
            PcapReplayWorkload([])


class TestSummarize:
    def test_empty_trace_rejected(self):
        with pytest.raises(WorkloadSpecError):
            summarize([])

    def test_row_shape(self):
        summary = get_workload("enterprise-poisson").summary(max_packets=100)
        row = summary.as_row()
        assert set(row) == {
            "packets",
            "duration_us",
            "mean_rate_gbps",
            "mean_frame_bytes",
            "small_packet_fraction",
            "distinct_flows",
            "burstiness_cv",
            "peak_to_mean",
        }
