"""CLI tests for the observability surface and structured logging."""

import json
import logging

import pytest

from repro.bench import append_history, check_obs_overhead, write_bench_artifact
from repro.cli import LOG_LEVELS, configure_logging, main
from repro.obs.schema import (
    validate_chrome_trace,
    validate_metrics,
    validate_profile,
    validate_trace_jsonl,
)

#: A cheap single-comparison scenario for CLI-level observe runs.
OBSERVE_ARGS = [
    "--scenario", "workload",
    "-p", "workload=enterprise-poisson",
    "-p", "chain=fw_nat",
    "--time-scale", "0.05",
]


class TestLogging:
    def test_configure_rejects_unknown_level(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("loud")

    @pytest.mark.parametrize("level", LOG_LEVELS)
    def test_configure_sets_level_and_single_handler(self, level):
        configure_logging(level)
        configure_logging(level)  # idempotent: no handler accumulation
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1
        assert root.level == getattr(logging, level.upper())

    def test_errors_are_logged_to_stderr(self, capsys):
        assert main(["workload", "preview", "no-such-workload"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err
        assert "ERROR" in err

    def test_verbose_flag_enables_debug(self, capsys):
        assert main(["-v", "list"]) == 0
        assert logging.getLogger("repro").level == logging.DEBUG

    def test_diagnostics_stay_off_stdout(self, capsys):
        main(["--log-level", "debug", "faults", "list", "--names"])
        out = capsys.readouterr().out
        assert "INFO" not in out and "DEBUG" not in out


class TestObserveCommands:
    def test_observe_profile_prints_stage_table(self, capsys):
        assert main(["observe", "profile", *OBSERVE_ARGS]) == 0
        out = capsys.readouterr().out
        assert "pipeline_walk" in out
        assert "total wall time" in out

    def test_observe_profile_json_validates(self, capsys):
        assert main(["observe", "profile", "--json", *OBSERVE_ARGS]) == 0
        validate_profile(json.loads(capsys.readouterr().out))

    def test_observe_metrics_stdout_validates(self, capsys):
        assert main(["observe", "metrics", *OBSERVE_ARGS]) == 0
        validate_metrics(json.loads(capsys.readouterr().out))

    def test_observe_trace_jsonl_stdout_validates(self, capsys):
        assert main(["observe", "trace", *OBSERVE_ARGS]) == 0
        validate_trace_jsonl(capsys.readouterr().out)

    def test_observe_trace_chrome_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        assert main(
            ["observe", "trace", "--format", "chrome", "--out", str(out_file),
             *OBSERVE_ARGS]
        ) == 0
        validate_chrome_trace(json.loads(out_file.read_text()))

    def test_observe_run_writes_all_artifacts(self, tmp_path, capsys):
        assert main(
            ["observe", "run", "--out", str(tmp_path / "obs"), "--json",
             *OBSERVE_ARGS]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["observations"]) == 1
        suffixes = sorted(name.split(".", 1)[1] for name in
                          (p.rsplit("/", 1)[-1] for p in payload["files"]))
        assert suffixes == [
            "metrics.json", "profile.json", "trace.chrome.json", "trace.jsonl"
        ]

    def test_observe_run_both_deployments(self, tmp_path, capsys):
        assert main(
            ["observe", "run", "--deployment", "both",
             "--out", str(tmp_path / "obs"), "--json", *OBSERVE_ARGS]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        deployments = [obs["deployment"] for obs in payload["observations"]]
        assert deployments == ["baseline", "payloadpark"]

    def test_observe_unknown_scenario_errors(self, capsys):
        assert main(["observe", "profile", "--scenario", "nope"]) == 2
        assert "nope" in capsys.readouterr().err

    def test_observe_without_subcommand_shows_help(self, capsys):
        assert main(["observe"]) == 1
        assert "usage" in capsys.readouterr().out.lower()


class TestRunObserveFlags:
    def test_run_with_metrics_exports_observations(self, tmp_path, capsys,
                                                   monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(
            ["run", "fig13", "--json", "--time-scale", "0.05",
             "--metrics", "--profile", "--obs-dir", "exports"]
        ) == 0
        json.loads(capsys.readouterr().out)  # stdout payload is untouched
        exports = list((tmp_path / "exports").iterdir())
        assert any(p.name.endswith(".metrics.json") for p in exports)
        assert any(p.name.endswith(".profile.json") for p in exports)
        for path in exports:
            if path.name.endswith(".metrics.json"):
                validate_metrics(json.loads(path.read_text()))

    def test_run_without_flags_writes_nothing(self, tmp_path, capsys,
                                              monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["run", "fig13", "--json", "--time-scale", "0.05"]) == 0
        assert not (tmp_path / "observations").exists()


class TestBenchArtifacts:
    FAKE_OBS = {
        "scenario": "fig07", "rate_gbps": 10.5, "time_scale": 0.25, "repeat": 1,
        "off": {"wall_s": 1.0, "packets": 100, "packets_per_sec": 100.0},
        "disabled": {"wall_s": 1.0, "packets": 100, "packets_per_sec": 99.5},
        "enabled": {"wall_s": 2.0, "packets": 100, "packets_per_sec": 50.0},
        "disabled_over_off": 0.995, "enabled_over_off": 0.5,
    }

    def test_check_obs_overhead_gate(self):
        ok, message = check_obs_overhead(self.FAKE_OBS)
        assert ok and "ok" in message
        bad = dict(self.FAKE_OBS, disabled_over_off=0.9)
        ok, message = check_obs_overhead(bad)
        assert not ok and "REGRESSION" in message

    def test_write_artifact_and_history(self, tmp_path):
        artifact = tmp_path / "obs_overhead.json"
        history = tmp_path / "history.jsonl"
        written = write_bench_artifact(
            self.FAKE_OBS, kind="obs_overhead",
            artifact_path=artifact, history_path=history,
        )
        assert written == artifact
        payload = json.loads(artifact.read_text())
        assert payload["kind"] == "obs_overhead"
        assert payload["disabled_over_off"] == 0.995
        assert "measured_at" in payload
        write_bench_artifact(
            self.FAKE_OBS, kind="obs_overhead",
            artifact_path=artifact, history_path=history,
        )
        lines = history.read_text().splitlines()
        assert len(lines) == 2  # history appends, artifact overwrites
        assert json.loads(lines[0])["kind"] == "obs_overhead"

    def test_append_history_alone(self, tmp_path):
        history = tmp_path / "history.jsonl"
        append_history({"speedup": 1.5}, kind="fastpath", history_path=history)
        entry = json.loads(history.read_text())
        assert entry["kind"] == "fastpath" and entry["speedup"] == 1.5

    def test_artifact_requires_path_for_other_kinds(self, tmp_path):
        with pytest.raises(ValueError, match="no default artifact path"):
            write_bench_artifact({"speedup": 1.0}, kind="fastpath")
