"""Unit tests for the Packet container."""

import pytest

from repro.core.header import PayloadParkHeader
from repro.packet.packet import ETHERNET_UDP_HEADER_BYTES, Packet


class TestConstruction:
    def test_udp_total_size(self):
        packet = Packet.udp(total_size=512)
        assert packet.wire_length == 512
        assert packet.payload_length == 512 - ETHERNET_UDP_HEADER_BYTES

    def test_udp_rejects_too_small_total_size(self):
        with pytest.raises(ValueError):
            Packet.udp(total_size=20)

    def test_udp_length_fields_consistent(self):
        packet = Packet.udp(total_size=300)
        assert packet.ip.total_length == 300 - 14
        assert packet.l4.length == 300 - 14 - 20

    def test_tcp_construction(self):
        packet = Packet.tcp(payload=b"x" * 10)
        assert packet.l4.HEADER_LEN == 20
        assert packet.payload_length == 10

    def test_packet_ids_are_unique(self):
        first, second = Packet.udp(total_size=64), Packet.udp(total_size=64)
        assert first.packet_id != second.packet_id


class TestSizeAccounting:
    def test_useful_bytes_is_headers_only(self):
        packet = Packet.udp(total_size=1000)
        assert packet.useful_bytes == ETHERNET_UDP_HEADER_BYTES

    def test_wire_length_includes_payloadpark_header(self):
        packet = Packet.udp(total_size=500)
        packet.pp = PayloadParkHeader(enb=1, tbl_idx=3, clk=4).seal()
        assert packet.wire_length == 500 + PayloadParkHeader.HEADER_LEN


class TestSerialization:
    def test_round_trip_preserves_bytes(self):
        packet = Packet.udp(total_size=256, src_ip="10.9.8.7", dst_port=4242)
        raw = packet.to_bytes()
        parsed = Packet.from_bytes(raw)
        assert parsed.to_bytes() == raw

    def test_five_tuple_survives_round_trip(self):
        packet = Packet.udp(total_size=128, src_port=1111, dst_port=2222)
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed.five_tuple() == packet.five_tuple()

    def test_wire_length_matches_serialized_length(self):
        packet = Packet.udp(total_size=777)
        assert packet.wire_length == len(packet.to_bytes())


class TestParkRestore:
    def test_park_and_restore_round_trip(self):
        packet = Packet.udp(total_size=512)
        original = packet.to_bytes()
        parked = packet.park_leading_payload(160)
        assert len(parked) == 160
        assert packet.wire_length == 512 - 160
        assert packet.ip.total_length == 512 - 14 - 160
        packet.restore_leading_payload(parked)
        assert packet.to_bytes() == original

    def test_park_rejects_more_than_payload(self):
        packet = Packet.udp(total_size=100)
        with pytest.raises(ValueError):
            packet.park_leading_payload(packet.payload_length + 1)

    def test_park_zero_bytes_is_noop(self):
        packet = Packet.udp(total_size=100)
        before = packet.to_bytes()
        assert packet.park_leading_payload(0) == b""
        assert packet.to_bytes() == before

    def test_copy_shares_payload_but_not_headers(self):
        packet = Packet.udp(total_size=200)
        clone = packet.copy()
        clone.eth.swap_addresses()
        clone.ip.ttl = 5
        assert packet.eth.dst != clone.eth.dst
        assert packet.ip.ttl != clone.ip.ttl
        assert packet.payload is clone.payload

    def test_five_tuple_none_without_l4(self):
        packet = Packet.udp(total_size=100)
        packet.l4 = None
        assert packet.five_tuple() is None
