"""Unit tests for the metrics registry: instruments, ring buffers, export."""

import pytest

from repro.errors import ObserveSpecError
from repro.netsim.eventloop import EventLoop
from repro.obs.config import ObserveSpec
from repro.obs.metrics import (
    LATENCY_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)
from repro.obs.schema import SchemaError, validate_metrics


class TestObserveSpec:
    def test_defaults_are_all_off(self):
        spec = ObserveSpec()
        assert not spec.enabled
        assert not (spec.metrics or spec.trace or spec.profile)

    def test_full_enables_everything(self):
        spec = ObserveSpec.full()
        assert spec.metrics and spec.trace and spec.profile

    def test_from_spec_none_and_false_mean_off(self):
        assert ObserveSpec.from_spec(None) is None
        assert ObserveSpec.from_spec(False) is None

    def test_from_spec_true_is_metrics_only(self):
        spec = ObserveSpec.from_spec(True)
        assert spec.metrics and not spec.trace and not spec.profile

    def test_from_spec_mapping_and_passthrough(self):
        spec = ObserveSpec.from_spec({"trace": True, "trace_sample_every": 4})
        assert spec.trace and spec.trace_sample_every == 4
        assert ObserveSpec.from_spec(spec) is spec

    def test_from_spec_rejects_unknown_keys(self):
        with pytest.raises(ObserveSpecError, match="unknown observe key"):
            ObserveSpec.from_spec({"traces": True})

    def test_rejects_out_of_range_knobs(self):
        with pytest.raises(ObserveSpecError):
            ObserveSpec(sample_interval_us=0)
        with pytest.raises(ObserveSpecError):
            ObserveSpec(series_capacity=1)
        with pytest.raises(ObserveSpecError):
            ObserveSpec(trace_sample_every=0)

    def test_sample_interval_ns_rounds_and_floors(self):
        assert ObserveSpec(sample_interval_us=50.0).sample_interval_ns == 50_000
        assert ObserveSpec(sample_interval_us=0.0001).sample_interval_ns == 1

    def test_as_dict_round_trips(self):
        spec = ObserveSpec.full(trace_sample_every=8)
        assert ObserveSpec.from_spec(spec.as_dict()) == spec


class TestInstruments:
    def test_counter_increments_and_rejects_decrease(self):
        counter = Counter("drops")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("occupancy")
        gauge.set(7)
        gauge.set(3.5)
        assert gauge.value == 3.5


class TestHistogram:
    def test_bucket_placement_including_overflow(self):
        hist = Histogram("lat", (10.0, 20.0, 50.0))
        for value in (5.0, 10.0, 15.0, 60.0):
            hist.observe(value)
        # <=10 gets 5.0 and the boundary 10.0; 60 overflows.
        assert hist.counts == [2, 1, 0, 1]
        assert hist.count == 4
        assert hist.min == 5.0 and hist.max == 60.0
        assert hist.mean == pytest.approx((5 + 10 + 15 + 60) / 4)

    def test_bounds_must_be_strictly_increasing_and_nonempty(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram("empty", ())
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("bad", (10.0, 10.0))

    def test_merge_folds_buckets_and_extrema(self):
        left = Histogram("lat", (10.0, 20.0))
        right = Histogram("lat", (10.0, 20.0))
        left.observe(5.0)
        left.observe(25.0)
        right.observe(15.0)
        right.observe(3.0)
        left.merge(right)
        assert left.counts == [2, 1, 1]
        assert left.count == 4
        assert left.min == 3.0 and left.max == 25.0
        assert left.total == pytest.approx(48.0)

    def test_merge_rejects_different_bounds(self):
        left = Histogram("lat", (10.0, 20.0))
        right = Histogram("lat", (10.0, 30.0))
        with pytest.raises(ValueError, match="different bounds"):
            left.merge(right)

    def test_merge_into_empty_adopts_extrema(self):
        empty = Histogram("lat", (10.0,))
        full = Histogram("lat", (10.0,))
        full.observe(4.0)
        empty.merge(full)
        assert empty.min == 4.0 and empty.max == 4.0 and empty.count == 1


class TestTimeSeries:
    def test_capacity_floor(self):
        with pytest.raises(ValueError, match=">=2"):
            TimeSeries("s", 1)

    def test_wraparound_keeps_newest_and_counts_drops(self):
        series = TimeSeries("s", 4)
        for tick in range(10):
            series.append(tick * 100, float(tick))
        assert len(series) == 4
        assert series.dropped == 6
        # Oldest-first, and only the newest four samples survive.
        assert series.points() == [
            (600, 6.0), (700, 7.0), (800, 8.0), (900, 9.0)
        ]

    def test_rates_are_per_second_derivatives(self):
        series = TimeSeries("bytes", 8)
        series.append(0, 0.0)
        series.append(1_000_000, 1000.0)  # +1000 bytes over 1 ms -> 1e6 bytes/s
        series.append(2_000_000, 1000.0)  # flat -> 0/s
        assert series.rates() == [(1_000_000, pytest.approx(1e6)),
                                  (2_000_000, pytest.approx(0.0))]

    def test_rates_skip_nonpositive_dt(self):
        series = TimeSeries("bytes", 8)
        series.append(100, 1.0)
        series.append(100, 2.0)
        assert series.rates() == []


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c", (1.0, 2.0)) is registry.histogram("c", (1.0, 2.0))

    def test_histogram_bounds_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("lat", (1.0, 2.0))
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("lat", (1.0, 3.0))

    def test_track_rejects_duplicates_and_bad_kind(self):
        registry = MetricsRegistry()
        registry.track("x", lambda: 0.0)
        with pytest.raises(ValueError, match="already tracked"):
            registry.track("x", lambda: 1.0)
        with pytest.raises(ValueError, match="kind"):
            registry.track("y", lambda: 0.0, kind="rate")

    def test_sampling_off_the_event_loop(self):
        env = EventLoop()
        registry = MetricsRegistry(series_capacity=16)
        state = {"value": 0.0}
        registry.track("v", lambda: state["value"], kind="cumulative")

        def bump() -> None:
            state["value"] += 10.0

        for tick in range(1, 10):
            env.schedule_at(tick * 1_000, bump)
        registry.start_sampling(env, interval_ns=2_000, horizon_ns=10_000)
        env.run_until(10_000)
        points = registry.series["v"].points()
        assert registry.samples_taken == len(points) == 5
        assert [t for t, _v in points] == [2_000, 4_000, 6_000, 8_000, 10_000]
        # Bumps land at 1..9 us, so each 2 us interval gains +20 except
        # the last (only the 9 us bump falls inside 8..10 us): the
        # cumulative-series export turns that into per-second rates.
        export = validate_metrics(registry.export())
        rates = [rate for _t, rate in export["series"]["v"]["rates_per_s"]]
        assert rates == pytest.approx([1e7, 1e7, 1e7, 5e6])

    def test_export_validates_and_is_plain_data(self):
        import json

        registry = MetricsRegistry()
        registry.counter("evictions").inc(3)
        registry.gauge("occupancy").set(0.5)
        registry.histogram("latency_us", LATENCY_BUCKETS_US).observe(42.0)
        registry.track("g", lambda: 1.0)
        registry.sample(100)
        export = validate_metrics(registry.export())
        json.dumps(export)  # must serialize without custom encoders
        assert export["counters"]["evictions"] == 3
        assert export["series"]["g"]["kind"] == "gauge"

    def test_schema_rejects_malformed_export(self):
        registry = MetricsRegistry()
        export = registry.export()
        export.pop("series")
        with pytest.raises(SchemaError, match="missing key"):
            validate_metrics(export)
