"""Property tests for the event loops (seeded-random interleavings).

The simulator's determinism rests on two scheduler invariants:

* events execute in nondecreasing time order, with FIFO order among
  events scheduled for the same timestamp (including events scheduled
  *during* the execution of a tie); and
* :class:`~repro.netsim.eventloop.FastEventLoop` (calendar buckets)
  executes exactly the same event sequence as the reference
  :class:`~repro.netsim.eventloop.EventLoop` (heap) for any interleaving
  of ``schedule_at`` / ``schedule_in`` / ``schedule_many`` calls.

Hypothesis is not part of the pinned environment, so the generators are
seeded ``random.Random`` programs replayed against both loop classes —
each seed is a reproducible property case.
"""

import random

import pytest

from repro.netsim.eventloop import EventLoop, FastEventLoop

LOOPS = (EventLoop, FastEventLoop)


def _random_program(seed, operations=400, horizon=2_000):
    """Build a reproducible scheduling program: a list of op descriptors.

    Ops are ``("at", when, tag)``, ``("in", delay, tag)`` or
    ``("many", [(when, tag), ...])``.  A fraction of events reschedule
    follow-ups when they execute, covering the schedule-during-drain
    paths.
    """
    rng = random.Random(seed)
    ops = []
    for index in range(operations):
        kind = rng.random()
        if kind < 0.45:
            ops.append(("at", rng.randrange(horizon), f"at{index}"))
        elif kind < 0.75:
            ops.append(("in", rng.randrange(horizon // 4), f"in{index}"))
        else:
            batch = [
                (rng.randrange(horizon), f"many{index}.{j}")
                for j in range(rng.randrange(1, 6))
            ]
            ops.append(("many", batch))
    return ops


def _execute(loop_cls, ops, chain_seed, run_in_windows):
    """Run one scheduling program; return the observed (time, tag) trace."""
    env = loop_cls()
    trace = []
    chain_rng = random.Random(chain_seed)

    def make_callback(tag, depth):
        def callback():
            trace.append((env.now, tag))
            # Occasionally schedule follow-ups from inside an executing
            # event: same-time ties, zero delays and future events.
            if depth < 2 and chain_rng.random() < 0.25:
                delay = chain_rng.choice((0, 0, 1, 7, 50))
                env.schedule_in(delay, make_callback(f"{tag}+{delay}", depth + 1))

        return callback

    for op in ops:
        if op[0] == "at":
            env.schedule_at(op[1], make_callback(op[2], 0))
        elif op[0] == "in":
            env.schedule_in(op[1], make_callback(op[2], 0))
        else:
            env.schedule_many(
                [(when, make_callback(tag, 0)) for when, tag in op[1]]
            )

    if run_in_windows:
        for horizon in (100, 500, 1_100, 2_500, 10_000):
            env.run_until(horizon)
    else:
        env.run_all()
    return trace, env


@pytest.mark.parametrize("loop_cls", LOOPS)
@pytest.mark.parametrize("seed", range(12))
def test_times_nondecreasing_and_ties_fifo(loop_cls, seed):
    ops = _random_program(seed)
    trace, env = _execute(loop_cls, ops, chain_seed=seed * 31 + 1, run_in_windows=True)
    assert trace, "program should execute events"
    times = [when for when, _tag in trace]
    assert times == sorted(times), "events must execute in nondecreasing time order"
    assert env.pending_events == 0
    assert env.events_executed == len(trace)


@pytest.mark.parametrize("loop_cls", LOOPS)
def test_same_time_events_preserve_scheduling_order(loop_cls):
    env = loop_cls()
    order = []
    for index in range(50):
        env.schedule_at(42, lambda i=index: order.append(i))
    env.schedule_many([(42, lambda i=i: order.append(50 + i)) for i in range(10)])
    env.run_until(42)
    assert order == list(range(60))


@pytest.mark.parametrize("seed", range(20))
@pytest.mark.parametrize("run_in_windows", (False, True))
def test_fast_and_reference_loops_execute_identical_sequences(seed, run_in_windows):
    ops = _random_program(seed, operations=300)
    reference, _ = _execute(EventLoop, ops, chain_seed=seed, run_in_windows=run_in_windows)
    fast, _ = _execute(FastEventLoop, ops, chain_seed=seed, run_in_windows=run_in_windows)
    assert fast == reference


@pytest.mark.parametrize("loop_cls", LOOPS)
@pytest.mark.parametrize("seed", range(6))
def test_run_all_max_events_resumes_exactly(loop_cls, seed):
    """Draining in small increments yields the same trace as one sweep."""
    ops = _random_program(seed, operations=120)
    whole, _ = _execute(loop_cls, ops, chain_seed=7, run_in_windows=False)

    env = loop_cls()
    trace = []
    chain_rng = random.Random(7)

    def make_callback(tag, depth):
        def callback():
            trace.append((env.now, tag))
            if depth < 2 and chain_rng.random() < 0.25:
                delay = chain_rng.choice((0, 0, 1, 7, 50))
                env.schedule_in(delay, make_callback(f"{tag}+{delay}", depth + 1))

        return callback

    for op in ops:
        if op[0] == "at":
            env.schedule_at(op[1], make_callback(op[2], 0))
        elif op[0] == "in":
            env.schedule_in(op[1], make_callback(op[2], 0))
        else:
            env.schedule_many([(when, make_callback(tag, 0)) for when, tag in op[1]])

    while env.pending_events:
        env.run_all(max_events=3)
    assert trace == whole


@pytest.mark.parametrize("loop_cls", LOOPS)
def test_raising_callback_consumes_its_event(loop_cls):
    """A callback that raises is still consumed, exactly like the heap loop."""
    env = loop_cls()
    ran = []
    env.schedule_at(10, lambda: (_ for _ in ()).throw(RuntimeError("boom")))
    env.schedule_at(20, lambda: ran.append(True))
    with pytest.raises(RuntimeError):
        env.run_until(100)
    assert env.pending_events == 1  # the raising event is gone, one remains
    env.run_until(100)
    assert ran == [True]
    assert env.pending_events == 0
