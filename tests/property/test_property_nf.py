"""Property-based tests for NF invariants (NAT, Maglev, firewall)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nf.firewall import Firewall, FirewallRule
from repro.nf.loadbalancer import MaglevLoadBalancer
from repro.nf.nat import Nat
from repro.packet.flows import FiveTuple
from repro.packet.ipv4 import PROTO_UDP, IPv4Address
from repro.packet.packet import Packet

flow_strategy = st.builds(
    FiveTuple,
    src_ip=st.builds(IPv4Address, st.integers(min_value=1, max_value=0xFFFFFFFE)),
    dst_ip=st.builds(IPv4Address, st.integers(min_value=1, max_value=0xFFFFFFFE)),
    protocol=st.just(PROTO_UDP),
    src_port=st.integers(min_value=1, max_value=65_535),
    dst_port=st.integers(min_value=1, max_value=65_535),
)


class TestMaglevProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=12))
    def test_table_always_fully_populated(self, backend_count):
        lb = MaglevLoadBalancer.with_backend_count(backend_count, table_size=101)
        assert len(lb.lookup_table) == 101
        assert set(lb.lookup_table) <= set(range(backend_count))
        assert len(set(lb.lookup_table)) == backend_count

    @settings(max_examples=40, deadline=None)
    @given(flow_strategy)
    def test_same_flow_same_backend(self, flow):
        lb = MaglevLoadBalancer.with_backend_count(6, table_size=101)
        assert lb.backend_for(flow) == lb.backend_for(flow)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=8))
    def test_load_spread_is_bounded(self, backend_count):
        lb = MaglevLoadBalancer.with_backend_count(backend_count, table_size=211)
        assert lb.load_imbalance() <= 1.5


class TestNatProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(flow_strategy, min_size=1, max_size=40, unique=True))
    def test_distinct_flows_never_share_external_port(self, flows):
        nat = Nat()
        ports = [nat.binding_for(flow).external_port for flow in flows]
        assert len(set(ports)) == len(flows)

    @settings(max_examples=30, deadline=None)
    @given(flow_strategy)
    def test_binding_is_stable(self, flow):
        nat = Nat()
        assert nat.binding_for(flow) == nat.binding_for(flow)
        assert nat.active_bindings == 1


class TestFirewallProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=8, max_value=32),
    )
    def test_prefix_match_consistent_with_subnet_check(self, octet3, octet4, prefix_len):
        rule = FirewallRule(
            network=IPv4Address.from_string("192.168.0.0"), prefix_len=prefix_len
        )
        firewall = Firewall(rules=[rule])
        address = f"192.168.{octet3}.{octet4}"
        packet = Packet.udp(src_ip=address, total_size=128)
        expected_drop = IPv4Address.from_string(address).in_subnet(
            IPv4Address.from_string("192.168.0.0"), prefix_len
        )
        assert firewall(packet).forwarded != expected_drop

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=64))
    def test_cycle_cost_monotone_in_rule_count(self, rule_count):
        small = Firewall.with_rule_count(rule_count)
        larger = Firewall.with_rule_count(rule_count + 10)
        packet = Packet.udp(total_size=128)
        assert larger(packet).cycles >= small(packet).cycles
