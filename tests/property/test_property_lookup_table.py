"""Property-based tests for the lookup table and the Split/Merge dataplane.

These check the invariants that make PayloadPark correct:

* the metadata table's occupancy always equals successful Splits minus
  Merges, Explicit Drops and evictions;
* a payload read back by Merge is byte-identical to the payload parked
  by Split, for any packet size and parking configuration;
* a Merge for an evicted slot never returns another packet's payload —
  it is always detected as a premature eviction.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import NfServerBinding, PayloadParkConfig
from repro.core.lookup_table import LookupTable
from repro.core.program import PayloadParkProgram
from repro.packet.packet import ETHERNET_UDP_HEADER_BYTES, Packet
from repro.switchsim.context import PipelinePacket
from repro.switchsim.pipeline import Pipeline


def _ctx():
    return PipelinePacket(packet=Packet.udp(total_size=64), ingress_port=0)


def _binding():
    return NfServerBinding(name="srv", ingress_ports=(0, 1), nf_port=2, default_egress_port=0)


class TestLookupTableInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=5),
        st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=120),
    )
    def test_occupancy_never_exceeds_capacity(self, entries, max_exp, operations):
        table = LookupTable(
            "t", Pipeline(stage_count=12), entries=entries, parked_bytes=160
        )
        clock = 0
        live = {}
        for op in operations:
            index = op % entries
            clock = (clock + 1) % 65_536
            if op % 2 == 0:
                result = table.probe_and_claim(_ctx(), index, clock, max_exp)
                if result.claimed:
                    live[index] = clock
            else:
                stored_clock = live.get(index)
                if stored_clock is not None:
                    release = table.validate_and_release(_ctx(), index, stored_clock)
                    if release.valid:
                        live.pop(index)
            assert 0 <= table.occupancy() <= entries

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=64), st.integers(min_value=160, max_value=384))
    def test_stored_payload_round_trips_exactly(self, entries, parked_bytes):
        table = LookupTable(
            "t",
            Pipeline(stage_count=12),
            entries=entries,
            parked_bytes=parked_bytes,
            allow_second_pass=True,
        )
        rng = random.Random(entries * parked_bytes)
        payload = bytes(rng.randrange(256) for _ in range(parked_bytes))
        index = entries - 1
        ctx = _ctx()
        for slot, array in zip(table.block_slots, table.block_arrays):
            table.store_block(ctx, slot, array, index, payload)
        assert table.peek_payload(index) == payload


class TestProgramInvariants:
    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=64, max_value=1400), min_size=5, max_size=60
        ),
        st.integers(min_value=2, max_value=32),
        st.integers(min_value=1, max_value=4),
    )
    def test_counter_accounting_balances(self, sizes, table_entries, expiry):
        """splits == merges + evictions + outstanding, with no payload corruption."""
        program = PayloadParkProgram(
            PayloadParkConfig(table_entries=table_entries, expiry_threshold=expiry),
            bindings=[_binding()],
        )
        in_flight = []
        originals = {}
        for index, size in enumerate(sizes):
            packet = Packet.udp(total_size=max(size, ETHERNET_UDP_HEADER_BYTES))
            originals[packet.packet_id] = packet.to_bytes()
            program.process(packet, ingress_port=index % 2)
            in_flight.append(packet)
            # Return packets to the switch in FIFO order every few arrivals.
            if len(in_flight) >= 3:
                returning = in_flight.pop(0)
                ctx = program.process(returning, ingress_port=2)
                if not ctx.dropped:
                    assert returning.to_bytes() == originals[returning.packet_id]
        counters = program.counters_for()
        outstanding = program.lookup_table().occupancy()
        assert counters.splits == counters.merges + counters.evictions + outstanding
        assert counters.outstanding_payloads == outstanding
        assert counters.premature_evictions <= counters.evictions

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=4))
    def test_premature_eviction_never_corrupts_payload(self, table_entries):
        """Overloading a tiny table must drop stale packets, never mix payloads."""
        program = PayloadParkProgram(
            PayloadParkConfig(table_entries=table_entries, expiry_threshold=1),
            bindings=[_binding()],
        )
        packets = [Packet.udp(total_size=512 + i) for i in range(table_entries * 3)]
        originals = {p.packet_id: p.to_bytes() for p in packets}
        for packet in packets:
            program.process(packet, ingress_port=0)
        for packet in packets:
            ctx = program.process(packet, ingress_port=2)
            if not ctx.dropped:
                assert packet.to_bytes() == originals[packet.packet_id]
        counters = program.counters_for()
        assert counters.premature_evictions > 0
        assert counters.merges + counters.premature_evictions + counters.merge_enb_zero == len(
            packets
        )
