"""Property tests: simulation equivalences hold *under active fault schedules*.

PR 3's fast path and PR 4's metamorphic relations were proven on static
testbeds; the fault engine mutates NF state, link state and control-
plane configuration mid-run, which is exactly where a missed cache
invalidation or an unseeded RNG would break the two core equivalences:

* **fast-vs-slow equality** — every metric byte-identical between the
  optimized and reference simulation paths, per fault profile; and
* **seed determinism** — re-running the identical chaos scenario
  reproduces every metric exactly.

Following the repo convention (Hypothesis is not part of the pinned
environment), the randomized layer uses seeded ``random.Random``
generators: each seed is a reproducible property case drawing a random
schedule from the event grammar and asserting materialization
determinism and horizon containment.
"""

import random
from dataclasses import replace

import pytest

from repro.errors import FaultSpecError
from repro.experiments.scenarios import workload_scenario
from repro.faults import EventSchedule, fault_profile_names
from repro.validation.metamorphic import FastSlowEquivalence, SeedDeterminism

#: Simulation fidelity for the paired-run relations.
TIME_SCALE = 0.05

#: Profiles exercised by the (costlier) paired-run relations: churn +
#: loss windows per the issue's acceptance list, plus the full mix.
RELATION_PROFILES = ("backend-churn", "lossy-links", "chaos-mix")


def _chaos_scenario(faults, workload="enterprise-poisson", seed=42):
    scenario = workload_scenario(workload, send_rate_gbps=8.0, chain="fw_nat_lb")
    return replace(scenario, faults=faults, seed=seed)


class TestFastSlowEqualityUnderFaults:
    @pytest.mark.parametrize("profile", RELATION_PROFILES)
    def test_profile_preserves_fast_slow_equality(self, profile):
        violations = FastSlowEquivalence().check(
            _chaos_scenario(profile), time_scale=TIME_SCALE
        )
        assert not violations, [str(violation) for violation in violations]

    def test_inline_schedule_preserves_fast_slow_equality(self):
        schedule = {"events": [
            {"kind": "firewall_churn", "at_frac": 0.3, "action": "add", "count": 5},
            {"kind": "backend_churn", "at_frac": 0.5, "action": "remove"},
            {"kind": "link_loss", "at_frac": 0.4, "duration_frac": 0.2,
             "probability": 0.1, "link": "all"},
        ]}
        violations = FastSlowEquivalence().check(
            _chaos_scenario(schedule), time_scale=TIME_SCALE
        )
        assert not violations, [str(violation) for violation in violations]


class TestSeedDeterminismUnderFaults:
    @pytest.mark.parametrize("profile", ("chaos-mix", "lossy-links"))
    def test_profile_preserves_determinism(self, profile):
        violations = SeedDeterminism().check(
            _chaos_scenario(profile, seed=7), time_scale=TIME_SCALE
        )
        assert not violations, [str(violation) for violation in violations]

    def test_different_seeds_shift_generator_phases(self):
        schedule = EventSchedule.from_spec("backend-churn")
        horizon = 6_000_000
        assert (
            [event.at_ns for event in schedule.materialize(3, horizon)]
            != [event.at_ns for event in schedule.materialize(4, horizon)]
        )


def _random_schedule_spec(rng):
    """Draw a structurally valid schedule from the event grammar."""
    events = []
    for _ in range(rng.randrange(1, 5)):
        kind = rng.choice(["link_down", "link_loss", "link_jitter",
                           "backend_churn", "firewall_churn",
                           "expiry_threshold", "park_drain"])
        record = {"kind": kind, "at_frac": round(rng.uniform(0.0, 0.95), 3)}
        if kind in ("link_down", "link_loss", "link_jitter"):
            record["link"] = rng.choice(["server", "gen", "gen0", "all"])
            if rng.random() < 0.8:
                record["duration_frac"] = round(rng.uniform(0.01, 0.3), 3)
        if kind == "link_loss":
            record["probability"] = round(rng.uniform(0.01, 0.5), 3)
        if kind == "link_jitter":
            record["jitter_ns"] = rng.randrange(100, 10_000)
        if kind == "backend_churn":
            record["action"] = rng.choice(["remove", "add", "flap"])
        if kind == "firewall_churn":
            record["action"] = rng.choice(["add", "remove"])
            record["count"] = rng.randrange(1, 6)
        if kind == "expiry_threshold":
            record["value"] = rng.randrange(1, 12)
        if kind == "park_drain":
            record["fraction"] = round(rng.uniform(0.1, 1.0), 2)
        events.append(record)
    generators = []
    if rng.random() < 0.5:
        generators.append({
            "kind": rng.choice(["backend_churn", "firewall_churn"]),
            "period_frac": round(rng.uniform(0.1, 0.4), 3),
            "jitter": round(rng.uniform(0.0, 0.9), 2),
        })
    return {"events": events, "generators": generators}


class TestScheduleProperties:
    @pytest.mark.parametrize("seed", range(25))
    def test_materialization_is_deterministic_and_bounded(self, seed):
        rng = random.Random(seed)
        schedule = EventSchedule.from_spec(_random_schedule_spec(rng))
        horizon = rng.randrange(100_000, 20_000_000)
        first = schedule.materialize(seed, horizon)
        again = schedule.materialize(seed, horizon)
        assert [(e.at_ns, e.kind, dict(e.params)) for e in first] == [
            (e.at_ns, e.kind, dict(e.params)) for e in again
        ]
        assert all(0 <= event.at_ns < horizon for event in first)
        assert [event.at_ns for event in first] == sorted(
            event.at_ns for event in first
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_roundtrip_through_plain_data(self, seed):
        schedule = EventSchedule.from_spec(_random_schedule_spec(random.Random(seed)))
        clone = EventSchedule.from_spec(schedule.to_dict())
        assert clone.materialize(seed, 1_000_000) == schedule.materialize(
            seed, 1_000_000
        )

    def test_every_registered_profile_survives_tiny_horizons(self):
        # A horizon smaller than every event time must yield an empty
        # materialization, never a crash or a negative-time event.
        for name in fault_profile_names():
            schedule = EventSchedule.from_spec(name)
            events = schedule.materialize(seed=1, horizon_ns=1_000)
            assert all(0 <= event.at_ns < 1_000 for event in events)
        with pytest.raises(FaultSpecError):
            schedule.materialize(seed=1, horizon_ns=0)
