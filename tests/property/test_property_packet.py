"""Property-based tests for the packet substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packet.checksum import internet_checksum, verify_internet_checksum
from repro.packet.crc import crc16, crc32
from repro.packet.ethernet import EthernetHeader, MacAddress
from repro.packet.flows import FiveTuple
from repro.packet.ipv4 import PROTO_UDP, IPv4Address, IPv4Header
from repro.packet.packet import ETHERNET_UDP_HEADER_BYTES, Packet
from repro.packet.pool import FramePool
from repro.packet.udp import UdpHeader
from repro.traffic.pktgen import blacklisted_source, build_udp_frame

ip_strings = st.builds(
    lambda a, b, c, d: f"{a}.{b}.{c}.{d}",
    *(st.integers(min_value=0, max_value=255) for _ in range(4)),
)
ports = st.integers(min_value=0, max_value=65_535)
frame_sizes = st.integers(min_value=ETHERNET_UDP_HEADER_BYTES, max_value=1514)


class TestChecksumProperties:
    @given(st.binary(min_size=0, max_size=256))
    def test_checksum_with_itself_appended_verifies(self, data):
        # Real protocols place the checksum at a 16-bit boundary, so pad
        # odd-length data before appending it.
        if len(data) % 2:
            data += b"\x00"
        checksum = internet_checksum(data)
        assert verify_internet_checksum(data + checksum.to_bytes(2, "big"))

    @given(st.binary(min_size=0, max_size=256))
    def test_checksum_in_16_bit_range(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF

    @given(st.binary(min_size=1, max_size=64), st.integers(min_value=0, max_value=63))
    def test_crc16_detects_any_single_byte_change(self, data, index):
        index %= len(data)
        mutated = bytearray(data)
        mutated[index] ^= 0xA5
        assert crc16(bytes(mutated)) != crc16(data)

    @given(st.binary(min_size=0, max_size=128))
    def test_crc32_deterministic(self, data):
        assert crc32(data) == crc32(data)


class TestHeaderRoundTrips:
    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_mac_round_trip(self, value):
        mac = MacAddress(value)
        assert MacAddress.from_string(str(mac)) == mac
        assert MacAddress.from_bytes(mac.to_bytes()) == mac

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_ipv4_address_round_trip(self, value):
        address = IPv4Address(value)
        assert IPv4Address.from_string(str(address)) == address

    @given(ip_strings, ip_strings, st.integers(min_value=20, max_value=1500))
    def test_ipv4_header_round_trip(self, src, dst, total_length):
        header = IPv4Header(
            src=IPv4Address.from_string(src),
            dst=IPv4Address.from_string(dst),
            total_length=total_length,
        )
        parsed = IPv4Header.from_bytes(header.to_bytes())
        assert (parsed.src, parsed.dst, parsed.total_length) == (
            header.src,
            header.dst,
            header.total_length,
        )

    @given(ports, ports, st.integers(min_value=8, max_value=1480))
    def test_udp_round_trip(self, sport, dport, length):
        header = UdpHeader(src_port=sport, dst_port=dport, length=length)
        assert UdpHeader.from_bytes(header.to_bytes()) == header


class TestPacketProperties:
    @settings(max_examples=50)
    @given(ip_strings, ip_strings, ports, ports, frame_sizes)
    def test_serialization_round_trip(self, src, dst, sport, dport, size):
        packet = Packet.udp(
            src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport, total_size=size
        )
        raw = packet.to_bytes()
        assert len(raw) == size
        assert Packet.from_bytes(raw).to_bytes() == raw

    @settings(max_examples=50)
    @given(frame_sizes, st.integers(min_value=0, max_value=1472))
    def test_park_restore_is_identity(self, size, parked_bytes):
        packet = Packet.udp(total_size=size)
        parked_bytes = min(parked_bytes, packet.payload_length)
        original = packet.to_bytes()
        parked = packet.park_leading_payload(parked_bytes)
        assert packet.wire_length == size - parked_bytes
        packet.restore_leading_payload(parked)
        assert packet.to_bytes() == original


flows = st.builds(
    lambda src, dst, sport, dport: FiveTuple(
        src_ip=IPv4Address(src),
        dst_ip=IPv4Address(dst),
        protocol=PROTO_UDP,
        src_port=sport,
        dst_port=dport,
    ),
    st.integers(min_value=1, max_value=0xFFFFFFFE),
    st.integers(min_value=1, max_value=0xFFFFFFFE),
    ports,
    ports,
)

SRC_MAC = "02:00:00:00:00:01"
DST_MAC = "02:00:00:00:00:02"


class TestFramePoolProperties:
    """Pooled (template-cloned) frames must be indistinguishable from
    reference-built frames — including after arbitrary header mutations,
    which must never leak back into the shared per-flow template."""

    @settings(max_examples=60)
    @given(flows, st.lists(frame_sizes, min_size=1, max_size=6))
    def test_pooled_frames_match_reference_builder(self, flow, sizes):
        pool = FramePool(SRC_MAC, DST_MAC)
        for size in sizes:
            pooled = pool.frame(size, flow)
            reference = build_udp_frame(size, flow, src_mac=SRC_MAC, dst_mac=DST_MAC)
            assert pooled.to_bytes() == reference.to_bytes()

    @settings(max_examples=60)
    @given(flows, st.integers(min_value=0, max_value=64_999), frame_sizes)
    def test_blacklist_override_matches_reference_builder(self, flow, index, size):
        pool = FramePool(SRC_MAC, DST_MAC)
        src = blacklisted_source(index)
        pooled = pool.frame(size, flow, src_ip=src)
        reference = build_udp_frame(
            size, flow, src_mac=SRC_MAC, dst_mac=DST_MAC, src_ip=str(src)
        )
        assert pooled.to_bytes() == reference.to_bytes()

    @settings(max_examples=60)
    @given(
        flows,
        frame_sizes,
        frame_sizes,
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=(1 << 48) - 1),
        ports,
        st.integers(min_value=0, max_value=255),
    )
    def test_header_mutations_do_not_corrupt_the_template(
        self, flow, first_size, second_size, new_dst_ip, new_dst_mac, new_port, ttl
    ):
        # Mutate every header layer of a pooled frame the way NFs do
        # (NAT rewrites, MAC swaps, TTL updates, payload parking)...
        pool = FramePool(SRC_MAC, DST_MAC)
        mutated = pool.frame(first_size, flow)
        mutated.ip.dst = IPv4Address(new_dst_ip)
        mutated.ip.ttl = ttl
        mutated.eth.dst = MacAddress(new_dst_mac)
        mutated.l4.dst_port = new_port
        if mutated.payload_length:
            mutated.park_leading_payload(mutated.payload_length)
        # ...then the next frame cloned from the same flow template must
        # still be byte-identical to the reference builder's output.
        fresh = pool.frame(second_size, flow)
        reference = build_udp_frame(
            second_size, flow, src_mac=SRC_MAC, dst_mac=DST_MAC
        )
        assert fresh.to_bytes() == reference.to_bytes()
