"""Live and post-hoc proof of the campaign observability layer.

The acceptance scenario for the telemetry bus + serve stack: during a
running 12-cell campaign the `/status` endpoint must show monotonically
increasing completed counts and a finite ETA, an invariant-violating
`validate: true` cell must appear in `/violations` *before* the
campaign exits, and afterwards a monitor rebuilt from the store alone
must serve the identical final state.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.obs.schema import (
    validate_campaign_cells,
    validate_campaign_event,
    validate_campaign_status,
    validate_campaign_violations,
)
from repro.orchestrator import (
    CampaignExecutor,
    CampaignMonitor,
    CampaignSpec,
    ResultStore,
    TelemetryBus,
    events_path_for,
    monitor_from_store,
)
from repro.orchestrator.serve import CampaignServer, StoreFollower

FAST = 0.05

#: Status keys that legitimately differ between a live monitor and a
#: post-hoc replay (wall-clock and transport bookkeeping, not state).
VOLATILE_STATUS_KEYS = ("elapsed_s", "events_seen", "workers")

#: Per-cell keys only the live path can know.
VOLATILE_CELL_KEYS = ("started_ts", "heartbeat_ts", "finished_ts", "pid",
                      "obs_summaries")


def twelve_cell_campaign(**kwargs):
    defaults = dict(
        name="serve-live",
        scenario="fw_nat_lb_10ge",
        grid={
            "send_rate_gbps": [2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
            "expiry_threshold": [1, 4],
        },
        time_scale=FAST,
        options={"validate": True},
    )
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


def stable_status(status):
    return {k: v for k, v in status.items() if k not in VOLATILE_STATUS_KEYS}


def stable_cells(payload):
    cells = []
    for cell in sorted(payload["cells"], key=lambda c: c["spec_hash"]):
        cells.append(
            {k: v for k, v in cell.items() if k not in VOLATILE_CELL_KEYS}
        )
    return cells


def _get_json(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return json.loads(response.read())


class _InjectedViolation(Exception):
    pass


@pytest.fixture()
def violating_observer(monkeypatch):
    """Patch the validation engine so slow-rate cells violate an invariant.

    The executor imports ``ValidationObserver`` lazily inside the worker,
    and the fork start method inherits this patch into pool processes.
    """
    from repro.validation import engine
    from repro.validation.engine import ValidationObserver, Violation

    class Sabotaged(ValidationObserver):
        def on_run_end(self, scenario, deployment, topology, program, reports):
            super().on_run_end(scenario, deployment, topology, program, reports)
            if getattr(scenario, "send_rate_gbps", None) == 2.0:
                self.violations.append(
                    Violation(
                        check="injected-check",
                        message="synthetic violation for the serve test",
                        scenario=getattr(scenario, "name", "fw_nat_lb_10ge"),
                        deployment=str(deployment),
                    )
                )

    monkeypatch.setattr(engine, "ValidationObserver", Sabotaged)
    return Sabotaged


class TestLiveCampaignServe:
    def test_live_endpoints_then_posthoc_parity(self, tmp_path, violating_observer):
        campaign = twelve_cell_campaign()
        store = ResultStore(tmp_path / "serve-live.jsonl")
        events_path = events_path_for(store.path)

        # The exact live-attach pipeline the CLI wires up: the campaign
        # process appends to the events sidecar through its bus, and the
        # serving side follows the files into its *own* monitor.
        bus = TelemetryBus(events_path=events_path).start()
        serve_monitor = CampaignMonitor(
            total=campaign.point_count, campaign=campaign.name,
            scenario=campaign.scenario, mode=campaign.mode,
        )
        follower = StoreFollower(
            serve_monitor, store.path, events_path, poll_interval_s=0.02
        )
        follower.start()
        server = CampaignServer(serve_monitor).start()

        samples = []
        sampling = threading.Event()
        sampling.set()

        def sample():
            while sampling.is_set():
                try:
                    status = _get_json(server.url + "/status")
                    violations = _get_json(server.url + "/violations")
                except OSError:  # pragma: no cover - server teardown race
                    break
                samples.append((status, violations))
                time.sleep(0.03)

        sampler = threading.Thread(target=sample, daemon=True)
        sampler.start()
        try:
            summary = CampaignExecutor(workers=2, bus=bus).run_campaign(
                campaign, store=store
            )
            # One last sampler pass sees the post-campaign state, then
            # drain the pipeline deterministically.
            time.sleep(0.1)
        finally:
            sampling.clear()
            sampler.join(timeout=5)
            bus.stop()
            follower.stop()

        assert summary.executed == 12
        # Two cells (send_rate 2.0 × both expiry values) were sabotaged.
        assert summary.failed == 2

        # -- live assertions over the sampled sequence ----------------
        assert samples, "sampler never reached the server"
        for status, violations in samples:
            validate_campaign_status(status)
            validate_campaign_violations(violations)
        done_series = [status["cells_done"] for status, _ in samples]
        assert all(b >= a for a, b in zip(done_series, done_series[1:])), (
            f"completed counts regressed: {done_series}"
        )
        mid_run = [
            status for status, _ in samples
            if 0 < status["cells_done"] < status["cells_total"]
        ]
        assert mid_run, f"no mid-run samples in {done_series}"
        assert any(
            status["eta_s"] is not None and 0 < status["eta_s"] < 3600
            for status in mid_run
        ), "no finite ETA observed mid-run"
        # The violating cell surfaced on the wire before campaign exit:
        # the final sample was taken while the server still followed the
        # live files, and earlier-than-final is even stronger evidence.
        assert any(
            violations["violations"] for _, violations in samples
        ), "no violation reached /violations during the campaign"
        injected = [
            entry
            for _, violations in samples
            for entry in violations["violations"]
        ]
        assert any(entry["check"] == "injected-check" for entry in injected)

        # -- post-hoc parity ------------------------------------------
        follower.poll_once()
        live_status = validate_campaign_status(serve_monitor.status())
        assert live_status["state"] == "finished"
        assert live_status["cells_done"] == 12
        assert live_status["cells_violation"] == 2
        assert live_status["violations_total"] >= 2

        posthoc = monitor_from_store(campaign, store)
        posthoc_status = validate_campaign_status(posthoc.status())
        assert stable_status(live_status) == stable_status(posthoc_status)
        assert stable_cells(
            validate_campaign_cells(serve_monitor.cells_payload())
        ) == stable_cells(validate_campaign_cells(posthoc.cells_payload()))
        live_violations = validate_campaign_violations(
            serve_monitor.violations_payload()
        )
        posthoc_violations = validate_campaign_violations(
            posthoc.violations_payload()
        )

        def keys(payload):
            return sorted(
                (v["spec_hash"], v["check"], v["deployment"], v["message"])
                for v in payload["violations"]
            )

        assert keys(live_violations) == keys(posthoc_violations)

        # The post-hoc server answers over HTTP too.
        with CampaignServer(posthoc) as posthoc_server:
            served = _get_json(posthoc_server.url + "/status")
            assert stable_status(served) == stable_status(live_status)
        server.stop()

    def test_events_sidecar_lines_validate(self, tmp_path):
        campaign = twelve_cell_campaign(
            name="sidecar",
            grid={"send_rate_gbps": [2.0, 4.0], "expiry_threshold": [1]},
            options={},
        )
        store = ResultStore(tmp_path / "sidecar.jsonl")
        with TelemetryBus(events_path=events_path_for(store.path)) as bus:
            CampaignExecutor(workers=1, bus=bus).run_campaign(
                campaign, store=store
            )
        lines = events_path_for(store.path).read_text().splitlines()
        events = [validate_campaign_event(json.loads(line)) for line in lines]
        types = [event["type"] for event in events]
        assert types[0] == "campaign_started"
        assert types[-1] == "campaign_finished"
        assert types.count("cell_started") == 2
        assert types.count("cell_finished") == 2
        # Serial path still reports worker-side context.
        started = next(e for e in events if e["type"] == "cell_started")
        assert started["pid"] > 0

    def test_resume_skips_completed_and_monitor_still_converges(self, tmp_path):
        campaign = twelve_cell_campaign(
            name="resume",
            grid={"send_rate_gbps": [2.0, 4.0], "expiry_threshold": [1]},
            options={},
        )
        store = ResultStore(tmp_path / "resume.jsonl")
        CampaignExecutor(workers=1).run_campaign(campaign, store=store)
        with TelemetryBus(events_path=events_path_for(store.path)) as bus:
            summary = CampaignExecutor(workers=1, bus=bus).run_campaign(
                campaign, store=store
            )
        assert summary.skipped == 2
        # The bus saw only skip bookkeeping; the store still rebuilds all.
        posthoc = monitor_from_store(campaign, store)
        assert posthoc.status()["cells_done"] == 2
