"""The chaos suite: fault injection proven correct end to end.

Three layers of proof:

* **green under churn** — a campaign sweeping fault profiles over
  workloads with ``validate: true`` holds every invariant (drop-aware
  packet conservation, no-orphaned-payload, NF cache consistency,
  parking-slot leak detection) while links flap, backends drain and
  rules burst mid-run;
* **red under injected bugs** — deliberately broken invalidation (a
  ``remove_backend`` that forgets the Maglev flow cache, a drain that
  forgets its eviction accounting, a drain that loses payload under its
  owner, a link that drops without counting) is caught by the exact
  invariant built to see it;
* **observable effects** — the injector's counters and the link fault
  counters prove the chaos actually happened (a green run that injected
  nothing would be vacuous).
"""

from dataclasses import replace

import pytest

from repro.controlplane.manager import ControlPlaneManager
from repro.experiments.runner import ExperimentRunner, run_observer
from repro.experiments.scenarios import workload_scenario
from repro.nf.loadbalancer import MaglevLoadBalancer
from repro.orchestrator import CampaignExecutor, CampaignSpec
from repro.validation.engine import ValidationObserver, check_scenario
from repro.validation.invariants import (
    NoOrphanedPayload,
    PacketConservation,
    RetransmitAccounting,
)

#: Cheap simulation fidelity for integration runs.
TIME_SCALE = 0.05


def _chaos_scenario(faults, workload="enterprise-poisson", **overrides):
    scenario = workload_scenario(workload, send_rate_gbps=8.0, chain="fw_nat_lb")
    return replace(scenario, faults=faults, **overrides)


class TestChaosCampaignAcceptance:
    def test_fault_profiles_by_workloads_validate_green(self):
        # The acceptance bar: >= 3 fault profiles x >= 2 workloads, every
        # grid point running baseline + PayloadPark under the invariant
        # engine, all green.
        campaign = CampaignSpec(
            name="chaos-acceptance",
            scenario="workload",
            base={"chain": "fw_nat_lb", "send_rate_gbps": 8.0, "seed": 21},
            grid={
                "faults": ["link-flap", "backend-churn", "chaos-mix"],
                "workload": ["enterprise-poisson", "bursty-mmpp"],
            },
            time_scale=TIME_SCALE,
            validate=True,
        )
        summary = CampaignExecutor(workers=1).run_campaign(campaign)
        failures = [
            (record["params"], record.get("error"))
            for record in summary.records
            if record.get("status") != "ok"
        ]
        assert summary.executed == 6 and not failures, failures
        for record in summary.records:
            assert record["runs_validated"] == 2
            assert record["violations"] == []

    def test_fault_grid_points_are_seed_deterministic(self):
        campaign = CampaignSpec(
            name="chaos-det",
            scenario="workload",
            base={"chain": "fw_nat_lb", "seed": 5, "faults": "chaos-mix"},
            grid={"workload": ["enterprise-poisson"]},
            time_scale=TIME_SCALE,
        )
        first = CampaignExecutor(workers=1).run_campaign(campaign).records[0]
        second = CampaignExecutor(workers=1).run_campaign(campaign).records[0]
        assert first["metrics"] == second["metrics"]


class TestChaosHasObservableEffects:
    def test_injector_counters_and_fault_drops(self):
        observer = ValidationObserver(keep_observations=True)
        runner = ExperimentRunner(time_scale=0.1)
        with run_observer(observer):
            runner.compare(_chaos_scenario("chaos-mix"))
        assert observer.runs_checked == 2 and not observer.violations, [
            str(violation) for violation in observer.violations
        ]
        for observation in observer.observations:
            injector = observation.topology.fault_injector
            stats = injector.stats()
            assert stats["events_applied"] > 0
            assert stats["backends_removed"] > 0
            assert stats["rules_added"] > 0
            assert stats["links_downed"] > 0
        # The PayloadPark run drained parked slots and accounted them.
        park = [
            observation for observation in observer.observations
            if observation.deployment == "payloadpark"
        ][0]
        assert sum(park.topology.fault_injector.slots_drained.values()) > 0

    def test_link_flap_drops_are_attributed_to_faults(self):
        observer = ValidationObserver(keep_observations=True)
        runner = ExperimentRunner(time_scale=0.1)
        with run_observer(observer):
            runner.compare(_chaos_scenario("link-flap"))
        assert not observer.violations
        for observation in observer.observations:
            attachment = observation.topology.attachments[0]
            assert attachment.server_link.fault_drops() > 0
            # Injected losses are attributed to their own breakdown
            # category and excluded from the §6.3.1 health criterion
            # (like deliberate chain drops): an outage window must not
            # read as an unhealthy deployment.
            for report in observation.reports:
                assert report.drop_breakdown["link_fault_drops"] > 0
                assert report.packets_dropped < report.drop_breakdown[
                    "link_fault_drops"
                ]

    def test_expiry_threshold_reconfigures_mid_run(self):
        observer = ValidationObserver(keep_observations=True)
        runner = ExperimentRunner(time_scale=0.1)
        with run_observer(observer):
            runner.compare(_chaos_scenario("threshold-flap"))
        assert not observer.violations
        park = [
            observation for observation in observer.observations
            if observation.deployment == "payloadpark"
        ][0]
        assert park.topology.fault_injector.threshold_changes == 2


class TestClosedLoopUnderChaos:
    def test_retransmit_conservation_under_link_loss_and_park_drain(self):
        # A closed-loop sender bank rides out a random-loss window AND a
        # parked-payload drain in the same run: every lost frame costs a
        # real retransmission, every drained payload a real eviction, and
        # the retransmitted-bytes accounting still reconciles throughput
        # against goodput exactly.
        schedule = {"events": [
            {"kind": "link_loss", "at_frac": 0.30, "duration_frac": 0.25,
             "probability": 0.05, "link": "all"},
            {"kind": "park_drain", "at_frac": 0.70, "fraction": 0.5},
        ]}
        observer = ValidationObserver(keep_observations=True)
        runner = ExperimentRunner(time_scale=0.1)
        with run_observer(observer):
            runner.compare(_chaos_scenario(schedule, workload="incast-collapse"))
        assert observer.runs_checked == 2 and not observer.violations, [
            str(violation) for violation in observer.violations
        ]
        for observation in observer.observations:
            assert RetransmitAccounting().check(observation) == []
            assert PacketConservation().check(observation) == []
            # The chaos had teeth: the transport really retransmitted.
            gen = observation.topology.attachments[0].pktgen
            assert gen.retransmitted_packets > 0
            assert gen.transport.timeouts + gen.transport.fast_retransmits > 0
        park = [
            observation for observation in observer.observations
            if observation.deployment == "payloadpark"
        ][0]
        assert sum(park.topology.fault_injector.slots_drained.values()) > 0


class TestInjectedBugsAreCaught:
    def test_stale_maglev_cache_after_remove_backend(self, monkeypatch):
        # The intentionally injected invalidation bug from the issue's
        # acceptance criteria: remove_backend rebuilds the Maglev table
        # but "forgets" to drop the per-flow fast-path cache, silently
        # pinning cached flows to the drained backend.
        def buggy_set_backends(self, backends):
            if not backends:
                raise ValueError("the load balancer needs at least one backend")
            self.backends = list(backends)
            self.lookup_table = self._populate()
            for backend in self.backends:
                self.assignments.setdefault(backend.name, 0)
            # BUG: self._backend_cache is left holding pre-churn mappings.

        monkeypatch.setattr(MaglevLoadBalancer, "set_backends", buggy_set_backends)
        schedule = {"events": [
            {"kind": "backend_churn", "at_frac": 0.6, "action": "remove", "count": 2},
        ]}
        report = check_scenario(_chaos_scenario(schedule), time_scale=0.1)
        assert not report.ok
        checks = {violation.check for violation in report.violations}
        assert "nf-state-consistency" in checks
        assert any("left the pool" in violation.message or
                   "Maglev table chooses" in violation.message
                   for violation in report.violations)

    def test_unaccounted_park_drain_is_caught(self, monkeypatch):
        # A drain that reclaims slots without recording evictions breaks
        # the splits - merges - drops - evictions identity; both the
        # parking-slot-leak and the no-orphaned-payload accounting checks
        # must see it.
        original = ControlPlaneManager.drain_parked

        def forgetful_drain(self, binding=None, fraction=1.0):
            if self.controller is None:
                return {}
            drained = {}
            for name, table in self.program.lookup_tables.items():
                count = 0
                for index in table.occupied_indices():
                    if table.drain_slot(index):
                        count += 1  # BUG: no eviction accounting
                drained[name] = count
            self.program.invalidate_fast_path()
            return drained

        monkeypatch.setattr(ControlPlaneManager, "drain_parked", forgetful_drain)
        report = check_scenario(_chaos_scenario("park-drain"), time_scale=0.1)
        monkeypatch.setattr(ControlPlaneManager, "drain_parked", original)
        assert not report.ok
        checks = {violation.check for violation in report.violations}
        assert "no-orphaned-payload" in checks
        assert "parking-slot-leak" in checks

    def test_payload_vanishing_under_owner_is_caught(self):
        # A drain that clears the payload registers but forgets to free
        # the metadata slot leaves an occupied slot with no bytes.  Plant
        # exactly that end state in a real finished observation (a
        # transient mid-run orphan is reclaimed by its returning owner,
        # so the scan's target is the persistent state) and assert the
        # structural scan flags it.
        from repro.core.lookup_table import MetadataEntry

        observer = ValidationObserver(keep_observations=True)
        runner = ExperimentRunner(time_scale=0.1)
        with run_observer(observer):
            runner.compare(_chaos_scenario("park-drain"))
        assert not observer.violations
        observation = [
            obs for obs in observer.observations if obs.deployment == "payloadpark"
        ][0]
        table = observation.program.lookup_table("srv0")
        table.metadata.poke(0, MetadataEntry(clk=1, exp=1))
        for array in table.block_arrays:
            array.poke(0, b"")
        violations = NoOrphanedPayload().check(observation)
        assert violations and "payload vanished" in violations[0].message

    def test_uncounted_link_drop_breaks_conservation(self):
        # Tamper with a finished observation: claim one fault drop never
        # happened.  Drop-aware conservation must flag the unaccounted
        # packet rather than absorbing it into the link totals.
        observer = ValidationObserver(keep_observations=True)
        runner = ExperimentRunner(time_scale=0.1)
        with run_observer(observer):
            runner.compare(_chaos_scenario("link-flap"))
        assert not observer.violations
        observation = observer.observations[0]
        link = observation.topology.attachments[0].server_link
        assert link.fault_drops() > 0
        link._a_to_b.stats.frames_dropped_down -= 1
        violations = PacketConservation().check(observation)
        assert violations and "accounted" in violations[0].message

    def test_orphan_scan_is_clean_on_a_healthy_drain(self):
        # Control: the real drain path leaves no orphan for the scan to
        # find, so the red tests above fail for the right reason.
        report = check_scenario(_chaos_scenario("park-drain"), time_scale=0.1)
        assert report.ok, [str(violation) for violation in report.violations]


class TestFuzzerFaultDimension:
    def test_generator_draws_fault_profiles(self):
        import random

        from repro.validation.fuzzer import FUZZ_FAULT_PROFILES, generate_run

        rng = random.Random(0)
        drawn = [generate_run(rng, index) for index in range(60)]
        with_faults = [run for run in drawn if "faults" in run.params]
        assert with_faults, "no fuzz descriptor drew the fault dimension"
        assert all(
            run.params["faults"] in FUZZ_FAULT_PROFILES for run in with_faults
        )

    def test_shrinking_drops_the_fault_schedule_first(self):
        from repro.orchestrator.spec import RunSpec
        from repro.validation.fuzzer import descriptor_size, shrink

        run = RunSpec(
            scenario="workload",
            params={"workload": "enterprise-poisson", "send_rate_gbps": 2.0,
                    "duration_us": 200.0, "warmup_us": 50.0, "seed": 1,
                    "faults": "chaos-mix"},
        )
        bare = shrink(run, still_fails=lambda candidate: True)
        assert "faults" not in bare.params
        assert descriptor_size(bare) < descriptor_size(run)

    def test_fault_descriptor_validates_clean(self):
        from repro.orchestrator.spec import RunSpec
        from repro.validation.fuzzer import check_run

        run = RunSpec(
            scenario="workload",
            params={"workload": "enterprise-poisson", "chain": "fw_nat_lb",
                    "send_rate_gbps": 6.0, "duration_us": 600.0,
                    "warmup_us": 150.0, "seed": 13, "faults": "backend-churn"},
            time_scale=0.2,
        )
        violations = check_run(run)
        assert not violations, [str(violation) for violation in violations]
