"""Fault-tolerance integration tests for the campaign dispatcher.

Chaos is injected through the ``REPRO_CAMPAIGN_CHAOS`` environment
variable (see :mod:`repro.orchestrator.dispatcher`): matching cells
SIGKILL their worker or hang on selected attempts, *without* touching
the specs — so a chaos run's records are directly comparable to a
clean run's.
"""

import json

import pytest

from repro.orchestrator import (
    CampaignExecutor,
    CampaignSpec,
    ResultStore,
    TelemetryBus,
)
from repro.orchestrator.dispatcher import CHAOS_ENV

#: Simulated-time scale keeping each run cheap while still exercising traffic.
FAST = 0.05


def chaos_campaign(rates=(2.0, 4.0, 6.0, 8.0)) -> CampaignSpec:
    return CampaignSpec(
        name="chaos-grid",
        scenario="fw_nat_lb_10ge",
        grid={"send_rate_gbps": list(rates)},
        time_scale=FAST,
    )


def event_types(monitor):
    return {event.get("type") for event in monitor.events_tail(0x10000)}


class TestWorkerCrashRecovery:
    def test_sigkilled_worker_loses_nothing(self, tmp_path, monkeypatch):
        """Kill a worker mid-campaign: the campaign still completes with
        no lost or duplicated cells, and the retried cell's record is
        identical to a clean run's (modulo wall time)."""
        campaign = chaos_campaign()
        clean = CampaignExecutor(workers=2).run_campaign(campaign)
        assert clean.failed == 0

        # The worker holding the send_rate=4.0 cell SIGKILLs itself on
        # the first attempt — a real, unannounced worker death.
        monkeypatch.setenv(
            CHAOS_ENV,
            json.dumps([{"match": {"send_rate_gbps": 4.0}, "crash_attempts": 1}]),
        )
        store = ResultStore(tmp_path / "grid.jsonl")
        with TelemetryBus() as bus:
            summary = CampaignExecutor(
                workers=2, bus=bus, retry_backoff_s=0.05
            ).run_campaign(campaign, store=store)
        assert summary.executed == 4
        assert summary.failed == 0
        assert summary.exhausted == 0

        # No lost or duplicated cells: exactly one record per grid point.
        records = store.load()
        assert len(records) == store.record_count() == 4
        assert {r["spec_hash"] for r in records} == {
            spec.spec_hash for spec in campaign.expand()
        }

        # The crash surfaced on the bus, and the monitor folded it in.
        assert {"worker_died", "cell_retried"} <= event_types(bus.monitor)
        assert bus.monitor.workers_died >= 1
        assert bus.monitor.retries_total >= 1
        status = bus.monitor.status()
        assert status["cells_ok"] == 4
        assert status["retries_total"] >= 1

        # The retried cell's record matches the clean run byte-for-byte
        # once the only nondeterministic field (wall time) is dropped.
        clean_by_hash = {r["spec_hash"]: r for r in clean.records}
        for record in records:
            expected = dict(clean_by_hash[record["spec_hash"]])
            actual = dict(record)
            expected.pop("wall_time_s")
            actual.pop("wall_time_s")
            assert actual == expected

    def test_crash_applies_to_sharded_store_too(self, tmp_path, monkeypatch):
        campaign = chaos_campaign(rates=(2.0, 4.0))
        monkeypatch.setenv(
            CHAOS_ENV,
            json.dumps([{"match": {"send_rate_gbps": 2.0}, "crash_attempts": 1}]),
        )
        store = ResultStore(tmp_path / "grid.jsonl", shards=3)
        summary = CampaignExecutor(workers=2, retry_backoff_s=0.05).run_campaign(
            campaign, store=store
        )
        assert summary.failed == 0
        assert store.completed_hashes() == {
            spec.spec_hash for spec in campaign.expand()
        }
        assert sorted(tmp_path.glob("grid.shard-*.jsonl"))


class TestCellTimeout:
    def test_hung_cell_is_killed_and_retried(self, tmp_path, monkeypatch):
        """A wedged cell blows its deadline, loses its worker, and
        succeeds on the retry — the campaign never stalls."""
        campaign = chaos_campaign(rates=(4.0, 8.0))
        monkeypatch.setenv(
            CHAOS_ENV,
            json.dumps(
                [{"match": {"send_rate_gbps": 8.0}, "hang_attempts": 1, "hang_s": 60.0}]
            ),
        )
        store = ResultStore(tmp_path / "grid.jsonl")
        with TelemetryBus() as bus:
            summary = CampaignExecutor(
                workers=2, bus=bus, cell_timeout_s=3.0, retry_backoff_s=0.05
            ).run_campaign(campaign, store=store)
        assert summary.executed == 2
        assert summary.failed == 0
        assert store.record_count() == 2
        retried = [
            event
            for event in bus.monitor.events_tail(0x10000)
            if event.get("type") == "cell_retried"
        ]
        assert retried and retried[0]["reason"] == "timeout"

    def test_always_hanging_cell_exhausts(self, tmp_path, monkeypatch):
        campaign = chaos_campaign(rates=(4.0, 8.0))
        monkeypatch.setenv(
            CHAOS_ENV,
            json.dumps(
                [{"match": {"send_rate_gbps": 8.0}, "hang_attempts": 99, "hang_s": 60.0}]
            ),
        )
        store = ResultStore(tmp_path / "grid.jsonl")
        summary = CampaignExecutor(
            workers=2, cell_timeout_s=1.0, max_attempts=2, retry_backoff_s=0.05
        ).run_campaign(campaign, store=store)
        assert summary.executed == 2
        assert summary.failed == 1
        assert summary.exhausted == 1
        latest = store.latest_by_hash()
        statuses = sorted(record["status"] for record in latest.values())
        assert statuses == ["exhausted", "ok"]
        marker = next(
            record for record in latest.values() if record["status"] == "exhausted"
        )
        assert marker["attempts"] == 2
        assert "timeout" in marker["error"]

        # Resume honors the marker: nothing to do, nothing duplicated.
        monkeypatch.delenv(CHAOS_ENV)
        again = CampaignExecutor(workers=2, max_attempts=2).run_campaign(
            campaign, store=store
        )
        assert again.executed == 0
        assert again.skipped == 2
