"""Per-cell observability exports under the multiprocess executor.

A campaign ``observe:`` block with an ``out_dir`` key must land every
cell's exports in a collision-free per-cell directory (keyed by spec
hash), with every summary and every file schema-valid — across a 3×2
grid executed by pool workers.
"""

import json
from pathlib import Path

from repro.obs.schema import (
    validate_metrics,
    validate_observation_summary,
    validate_profile,
)
from repro.orchestrator import CampaignExecutor, CampaignSpec, ResultStore

FAST = 0.05


def observed_campaign(out_dir, **kwargs):
    defaults = dict(
        name="obs-grid",
        scenario="fw_nat_lb_10ge",
        grid={"send_rate_gbps": [2.0, 4.0, 6.0], "expiry_threshold": [1, 4]},
        time_scale=FAST,
        options={
            "observe": {"metrics": True, "profile": True, "out_dir": str(out_dir)},
        },
    )
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


class TestCampaignObserveOutDirs:
    def test_multiprocess_grid_exports_per_cell(self, tmp_path):
        out_dir = tmp_path / "observations"
        store = ResultStore(tmp_path / "obs-grid.jsonl")
        campaign = observed_campaign(out_dir)

        summary = CampaignExecutor(workers=3).run_campaign(campaign, store=store)
        assert summary.executed == 6
        assert summary.failed == 0

        records = store.load()
        assert len(records) == 6

        export_dirs = [record["observability_dir"] for record in records]
        # One directory per cell, keyed by spec hash: no collisions.
        assert len(set(export_dirs)) == 6
        hashes = {record["spec_hash"] for record in records}
        assert {str(out_dir / h) for h in hashes} == set(export_dirs)

        all_files = []
        for record in records:
            # Each compare-mode cell observes both deployments.
            assert len(record["observability"]) == 2
            for summary_digest in record["observability"]:
                validate_observation_summary(summary_digest)
                assert summary_digest["metrics"]["samples_taken"] > 0
                assert summary_digest["profile"]["total_wall_ns"] > 0
            files = record["observability_files"]
            # metrics + profile for each of the two deployment runs.
            assert len(files) == 4
            all_files.extend(files)
            for name in files:
                path = Path(name)
                assert path.exists(), f"missing export {name}"
                assert str(path).startswith(record["observability_dir"])
                data = json.loads(path.read_text())
                if name.endswith(".metrics.json"):
                    validate_metrics(data)
                elif name.endswith(".profile.json"):
                    validate_profile(data)

        # Global collision check across every exported artifact.
        assert len(all_files) == len(set(all_files)) == 24

    def test_serial_path_exports_identically(self, tmp_path):
        out_dir = tmp_path / "observations"
        store = ResultStore(tmp_path / "serial.jsonl")
        campaign = observed_campaign(
            out_dir,
            name="obs-serial",
            grid={"send_rate_gbps": [2.0], "expiry_threshold": [1]},
        )
        summary = CampaignExecutor(workers=1).run_campaign(campaign, store=store)
        assert summary.failed == 0
        (record,) = store.load()
        assert len(record["observability_files"]) == 4
        for name in record["observability_files"]:
            assert Path(name).exists()

    def test_out_dir_changes_spec_identity(self, tmp_path):
        # out_dir lives in options, which feed the spec hash: pointing
        # the same grid at a new directory re-executes rather than
        # silently resuming with exports in the old place.
        a = observed_campaign(tmp_path / "a").expand()[0]
        b = observed_campaign(tmp_path / "b").expand()[0]
        assert a.spec_hash != b.spec_hash

    def test_observe_without_out_dir_keeps_summaries_only(self, tmp_path):
        store = ResultStore(tmp_path / "no-dir.jsonl")
        campaign = observed_campaign(
            tmp_path / "unused",
            name="no-dir",
            grid={"send_rate_gbps": [2.0], "expiry_threshold": [1]},
            options={"observe": {"metrics": True}},
        )
        summary = CampaignExecutor(workers=1).run_campaign(campaign, store=store)
        assert summary.failed == 0
        (record,) = store.load()
        assert "observability" in record
        assert "observability_dir" not in record
        assert not (tmp_path / "unused").exists()
