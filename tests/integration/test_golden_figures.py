"""Golden-figure regression suite.

Every figure/table experiment runs on a reduced grid (see
``tests/golden/cases.py``) in **both** simulation modes — the reference
slow path and the optimized fast path — and the resulting tables must
match the committed JSON under ``tests/golden/`` exactly, row for row.

This is the contract that lets the fast path exist at all: batched
events, pooled packets, compiled pipeline walks and memoized NF
verdicts are only admissible because this suite proves they reproduce
the reference results byte-for-byte.  A legitimate behaviour change
must regenerate the tables (``python tests/golden/regenerate.py``) and
say so in the commit; an accidental divergence fails here first.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.experiments.runner import default_fast_path

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"


def _load_cases():
    spec = importlib.util.spec_from_file_location(
        "golden_cases", GOLDEN_DIR / "cases.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.GOLDEN_CASES


GOLDEN_CASES = _load_cases()


def _normalize(payload):
    """Round-trip through JSON so tuples/ints compare like the stored file."""
    return json.loads(json.dumps(payload, sort_keys=True))


def _golden(name):
    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists(), (
        f"missing golden table {path}; run: PYTHONPATH=src python "
        f"tests/golden/regenerate.py {name}"
    )
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


class TestGoldenTablesExist:
    def test_every_case_has_a_committed_table(self):
        missing = [
            name
            for name in GOLDEN_CASES
            if not (GOLDEN_DIR / f"{name}.json").exists()
        ]
        assert missing == []

    def test_no_orphan_tables(self):
        orphans = [
            path.name
            for path in GOLDEN_DIR.glob("*.json")
            if path.stem not in GOLDEN_CASES
        ]
        assert orphans == []


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
class TestGoldenFigures:
    """Exact row equality in both simulation modes."""

    def test_fast_path_matches_golden(self, name):
        with default_fast_path(True):
            payload = GOLDEN_CASES[name]()
        assert _normalize(payload) == _golden(name)

    def test_slow_path_matches_golden(self, name):
        with default_fast_path(False):
            payload = GOLDEN_CASES[name]()
        assert _normalize(payload) == _golden(name)
