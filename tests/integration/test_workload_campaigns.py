"""End-to-end: every named workload runs through campaign sweeps.

The acceptance bar for the workload subsystem: each registered workload
must survive the full path — registry lookup, scenario materialization,
simulator execution, result-store round trip — via ``repro campaign
run``-style sweeps, deterministically for a fixed seed.
"""

import json

import pytest

from repro.cli import main
from repro.orchestrator import CampaignExecutor, CampaignSpec, ResultStore
from repro.workloads import workload_names

#: Cheap simulation fidelity for integration runs.
TIME_SCALE = 0.04


def _run_campaign(campaign, store=None):
    summary = CampaignExecutor(workers=1).run_campaign(campaign, store=store)
    failures = [r.get("error") for r in summary.records if r.get("status") != "ok"]
    assert not failures, failures
    return summary


class TestWorkloadCampaigns:
    def test_every_registered_workload_runs_in_a_sweep(self):
        campaign = CampaignSpec(
            name="all-workloads",
            scenario="workload",
            grid={"workload": workload_names()},
            base={"seed": 11},
            time_scale=TIME_SCALE,
        )
        summary = _run_campaign(campaign)
        assert summary.executed == len(workload_names())
        for record in summary.records:
            metrics = record["metrics"]
            assert metrics["payloadpark_packets_sent"] > 0
            assert metrics["baseline_packets_sent"] > 0

    def test_workload_by_rate_by_memory_grid(self, tmp_path):
        campaign = CampaignSpec(
            name="wl-grid",
            scenario="workload",
            grid={
                "workload": ["bursty-mmpp", "flood-churn"],
                "send_rate_gbps": [4.0, 8.0],
                "sram_fraction": [0.10, 0.26],
            },
            base={"seed": 3},
            time_scale=TIME_SCALE,
        )
        store = ResultStore(tmp_path / "grid.jsonl")
        summary = _run_campaign(campaign, store=store)
        assert summary.executed == 8
        # Resume skips everything on the second pass.
        resumed = CampaignExecutor(workers=1).run_campaign(campaign, store=store)
        assert resumed.skipped == 8 and resumed.executed == 0

    @pytest.mark.parametrize("name", workload_names())
    def test_same_seed_reproduces_metrics(self, name):
        campaign = CampaignSpec(
            name="det",
            scenario="workload",
            grid={"workload": [name]},
            base={"seed": 7},
            time_scale=TIME_SCALE,
        )
        first = _run_campaign(campaign).records[0]["metrics"]
        second = _run_campaign(campaign).records[0]["metrics"]
        assert first == second

    def test_campaign_cli_round_trip(self, tmp_path, capsys):
        spec = {
            "name": "wl-cli",
            "scenario": "workload",
            "grid": {"workload": ["rate-ramp", "pcap-replay"]},
            "base": {"seed": 5},
            "time_scale": TIME_SCALE,
        }
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(spec))
        store = tmp_path / "results.jsonl"
        assert main(["campaign", "run", str(path), "--store", str(store), "--serial"]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", str(path), "--store", str(store),
                     "--columns", "goodput_gain_percent", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {row["workload"] for row in payload["rows"]} == {"rate-ramp", "pcap-replay"}
