"""End-to-end simulation tests: traffic generator ↔ switch ↔ NF server.

These tests exercise the whole stack (dataplane program, discrete-event
links, NIC/PCIe models, NF framework) at small scale and check the
paper's qualitative claims: PayloadPark keeps goodput climbing past the
baseline's saturation point, saves PCIe bandwidth at every rate, and
does not hurt latency below saturation.
"""

import pytest

from repro.experiments.quickstart import quickstart_scenario
from repro.experiments.runner import DeploymentKind, ExperimentRunner
from repro.experiments.scenarios import (
    explicit_drop_scenario,
    fw_nat_lb_10ge,
    fw_nat_lb_10ge_recirculation,
    small_packet_40ge,
)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


def _shrink(scenario, duration_us=2_500.0, warmup_us=700.0):
    """Shorten a scenario so integration tests stay fast."""
    from dataclasses import replace

    return replace(scenario, duration_us=duration_us, warmup_us=warmup_us)


class TestBelowSaturation:
    def test_deployments_equivalent_below_saturation(self, runner):
        scenario = _shrink(quickstart_scenario(send_rate_gbps=6.0))
        result = runner.compare(scenario)
        baseline, payloadpark = result.comparison.baseline, result.comparison.payloadpark
        assert baseline.healthy and payloadpark.healthy
        assert payloadpark.goodput_to_nf_gbps == pytest.approx(
            baseline.goodput_to_nf_gbps, rel=0.05
        )
        assert payloadpark.premature_evictions == 0

    def test_no_latency_penalty_below_saturation(self, runner):
        scenario = _shrink(quickstart_scenario(send_rate_gbps=6.0))
        result = runner.compare(scenario)
        comparison = result.comparison
        assert comparison.payloadpark.avg_latency_us <= comparison.baseline.avg_latency_us * 1.10

    def test_pcie_savings_at_all_rates(self, runner):
        for rate in (4.0, 8.0):
            scenario = _shrink(quickstart_scenario(send_rate_gbps=rate))
            comparison = runner.compare(scenario).comparison
            assert comparison.pcie_savings_percent > 5.0


class TestBeyondBaselineSaturation:
    def test_payloadpark_gains_goodput_when_link_saturates(self, runner):
        scenario = _shrink(fw_nat_lb_10ge(send_rate_gbps=10.8))
        comparison = runner.compare(scenario).comparison
        assert comparison.goodput_gain_percent > 3.0
        # The baseline's switch -> NF link is saturated, so it drops packets
        # and its latency spikes; PayloadPark does not.
        assert not comparison.baseline.healthy
        assert comparison.payloadpark.avg_latency_us < comparison.baseline.avg_latency_us

    def test_recirculation_increases_gain(self, runner):
        rate = 11.5
        plain = runner.compare(_shrink(fw_nat_lb_10ge(send_rate_gbps=rate))).comparison
        recirc = runner.compare(
            _shrink(fw_nat_lb_10ge_recirculation(send_rate_gbps=rate))
        ).comparison
        assert recirc.goodput_gain_percent > plain.goodput_gain_percent

    def test_small_packets_40ge_baseline_caps_first(self, runner):
        scenario = _shrink(small_packet_40ge(send_rate_gbps=38.0))
        comparison = runner.compare(scenario).comparison
        assert comparison.payloadpark.goodput_to_nf_gbps > comparison.baseline.goodput_to_nf_gbps


class TestExplicitDropsAndEviction:
    def test_firewall_drops_leave_payloads_for_evictor(self, runner):
        scenario = _shrink(
            explicit_drop_scenario(
                expiry_threshold=2, explicit_drop=False, blacklisted_fraction=0.1,
                send_rate_gbps=8.0,
            )
        )
        report = runner.run_deployment(scenario, DeploymentKind.PAYLOADPARK)
        assert report.evictions > 0
        assert report.explicit_drops == 0

    def test_explicit_drops_reclaim_instead_of_evicting(self, runner):
        scenario = _shrink(
            explicit_drop_scenario(
                expiry_threshold=10, explicit_drop=True, blacklisted_fraction=0.1,
                send_rate_gbps=8.0,
            )
        )
        report = runner.run_deployment(scenario, DeploymentKind.PAYLOADPARK)
        assert report.explicit_drops > 0

    def test_conservative_eviction_without_explicit_drops_loses_goodput(self, runner):
        aggressive = _shrink(
            explicit_drop_scenario(2, False, blacklisted_fraction=0.1, send_rate_gbps=10.5)
        )
        conservative = _shrink(
            explicit_drop_scenario(10, False, blacklisted_fraction=0.1, send_rate_gbps=10.5)
        )
        fast = runner.run_deployment(aggressive, DeploymentKind.PAYLOADPARK)
        slow = runner.run_deployment(conservative, DeploymentKind.PAYLOADPARK)
        assert slow.split_disabled >= fast.split_disabled


class TestMultiServer:
    def test_two_servers_are_isolated_and_both_gain(self, runner):
        from repro.experiments.scenarios import multi_server_384b
        scenario = _shrink(multi_server_384b(server_count=2, send_rate_gbps=10.5))
        result = runner.compare_multi_server(scenario)
        assert len(result.per_server) == 2
        for comparison in result.per_server:
            assert comparison.payloadpark.premature_evictions == 0
            assert (
                comparison.payloadpark.goodput_to_nf_gbps
                >= comparison.baseline.goodput_to_nf_gbps * 0.98
            )
