"""Cross-process determinism of the CLI experiment output.

The paper-reproduction claim requires that ``repro run <fig> --json``
is a pure function of (experiment, seed, time scale): two separate
processes must emit byte-identical JSON, on the fast path and on the
reference slow path — and the two paths must agree with each other.
Running in fresh subprocesses catches determinism bugs that in-process
tests cannot (hash randomization, import-order state, id()-keyed
caches).
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

BASE_COMMAND = [
    sys.executable,
    "-m",
    "repro",
    "run",
    "fig07",
    "--json",
    "--seed",
    "42",
    "--time-scale",
    "0.05",
]


def _run_cli(extra_args=()):
    result = subprocess.run(
        [*BASE_COMMAND, *extra_args],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PYTHONHASHSEED": "random"},
        capture_output=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr.decode()
    return result.stdout


@pytest.mark.parametrize("mode_args", ((), ("--slow-path",)), ids=("fast", "slow"))
def test_fig07_json_is_byte_identical_across_processes(mode_args):
    first = _run_cli(mode_args)
    second = _run_cli(mode_args)
    assert first == second
    assert first.startswith(b"{")


def test_fast_and_slow_paths_emit_identical_json():
    assert _run_cli(()) == _run_cli(("--slow-path",))
