"""Integration tests for §6.2.6: PayloadPark is transparent to end hosts."""

import pytest

from repro.experiments import functional_equivalence
from repro.packet.pcap import read_pcap


class TestFunctionalEquivalence:
    def test_payloadpark_and_baseline_produce_identical_packets(self):
        report = functional_equivalence.run(packet_count=800)
        assert report["identical"]
        assert report["mismatches"] == 0
        assert report["packets_compared"] == 800
        assert report["premature_evictions"] == 0

    def test_split_and_merge_counts_balance(self):
        report = functional_equivalence.run(packet_count=500)
        assert report["splits"] == report["merges"]
        # The enterprise mix has ~30 % small packets that are never split.
        small_fraction = report["split_disabled_small_payload"] / report["packets_compared"]
        assert 0.2 < small_fraction < 0.4

    def test_pcap_capture_matches(self, tmp_path):
        prefix = str(tmp_path / "equiv")
        report = functional_equivalence.run(packet_count=200, pcap_prefix=prefix)
        assert report["identical"]
        payloadpark = read_pcap(f"{prefix}-payloadpark.pcap")
        baseline = read_pcap(f"{prefix}-baseline.pcap")
        assert len(payloadpark) == len(baseline) == 200
        for pp_record, base_record in zip(payloadpark, baseline):
            assert pp_record.data == base_record.data
