"""Acceptance tests for the observability plane (ISSUE 6).

One fully-instrumented chaos run (enterprise workload, FW->NAT->LB
chain, link-flap fault profile, PayloadPark deployment) pins the three
acceptance criteria end to end:

* the time-series export shows the goodput dip inside the fault
  windows,
* the Chrome-loadable trace contains at least one parked-then-evicted
  payload span plus the fault windows themselves,
* the phase profiler attributes >=80% of wall time to named stages.

Alongside, the determinism contract: instrumentation must not change
simulation results (observe-on reports equal observe-off reports), and
trace exports must be byte-identical across the fast and slow engine
paths and across repeated runs at the same seed.
"""

import dataclasses
import json
import pickle

import pytest

from repro.experiments.runner import (
    DeploymentKind,
    ExperimentRunner,
    default_time_scale,
)
from repro.experiments.scenarios import workload_scenario
from repro.obs.config import ObserveSpec
from repro.obs.schema import validate_observation
from repro.obs.session import ObservationSink, observation_sink
from repro.orchestrator.executor import RunSpec, execute_run

#: Scaled-down run length: long enough for both link-flap windows
#: (fracs 0.35 and 0.70) to land inside the measured interval.
TIME_SCALE = 0.2


def _chaos_scenario(observe):
    scenario = workload_scenario("enterprise-poisson", chain="fw_nat_lb")
    return dataclasses.replace(scenario, faults="link-flap", observe=observe)


def _run(observe, deployment=DeploymentKind.PAYLOADPARK, fast_path=None):
    scenario = _chaos_scenario(observe)
    if fast_path is not None:
        scenario = dataclasses.replace(scenario, fast_path=fast_path)
    sink = ObservationSink()
    with default_time_scale(TIME_SCALE), observation_sink(sink):
        report = ExperimentRunner(time_scale=TIME_SCALE).run_deployment(
            scenario, deployment
        )
    return report, sink.observations


@pytest.fixture(scope="module")
def traced_chaos():
    """One fully-instrumented PayloadPark run under link-flap faults."""
    report, observations = _run(ObserveSpec.full())
    assert len(observations) == 1
    return report, observations[0]


class TestAcceptance:
    def test_exports_validate_against_their_schemas(self, traced_chaos):
        _report, observation = traced_chaos
        validate_observation(observation)

    def test_trace_records_both_fault_windows(self, traced_chaos):
        _report, observation = traced_chaos
        windows = [
            record
            for record in map(json.loads, observation.trace_jsonl.splitlines())
            if record.get("type") == "fault"
        ]
        assert len(windows) == 2
        assert all(window["kind"] == "link_down" for window in windows)
        assert all(window["duration_ns"] > 0 for window in windows)

    def test_trace_has_parked_then_evicted_span(self, traced_chaos):
        _report, observation = traced_chaos
        spans = [
            record
            for record in map(json.loads, observation.trace_jsonl.splitlines())
            if record.get("type") == "span"
        ]
        evicted = [span for span in spans if span["outcome"] == "evicted"]
        assert evicted, "link-flap chaos run must evict parked payloads"
        assert all(span["end_ns"] >= span["start_ns"] for span in evicted)

    def test_chrome_trace_renders_fault_and_park_spans(self, traced_chaos):
        _report, observation = traced_chaos
        names = [
            event["name"]
            for event in observation.chrome_trace["traceEvents"]
            if event["ph"] == "X"
        ]
        assert sum(name.startswith("fault:link_down") for name in names) == 2
        assert any(
            name.startswith("park[") and name.endswith(":evicted")
            for name in names
        )

    def test_goodput_dips_inside_fault_windows(self, traced_chaos):
        """The metrics time series must show the fault-window goodput dip."""
        _report, observation = traced_chaos
        windows = [
            (record["ts"], record["ts"] + record["duration_ns"])
            for record in map(json.loads, observation.trace_jsonl.splitlines())
            if record.get("type") == "fault"
        ]
        series = observation.metrics["series"]["pktgen.srv0.delivered_useful_bytes"]
        # Each rate sample is stamped at its interval's *end*: a sample
        # within interval_ns after a window closes still covers in-window
        # time, so widen the window by one interval on the right.
        slack = observation.metrics["sample_interval_ns"]
        inside, outside = [], []
        for t_ns, rate in series["rates_per_s"]:
            if any(start < t_ns <= end + slack for start, end in windows):
                inside.append(rate)
            else:
                outside.append(rate)
        assert inside and outside
        dip = (sum(inside) / len(inside)) / (sum(outside) / len(outside))
        assert dip < 0.5, f"goodput inside fault windows only dipped to {dip:.2f}x"

    def test_profiler_attributes_wall_time_to_named_stages(self, traced_chaos):
        _report, observation = traced_chaos
        profile = observation.profile
        assert profile["total_wall_ns"] > 0
        # >=80% of wall time lands in named stages; the residual
        # event_dispatch stage completes the attribution to ~100%.
        assert profile["measured_fraction"] > 0.5
        assert profile["attributed_fraction"] >= 0.8
        assert profile["attributed_fraction"] == pytest.approx(1.0)
        names = {stage["name"] for stage in profile["stages"]}
        assert {"pipeline_walk", "nf_processing", "traffic_gen"} <= names


class TestDeterminism:
    def test_observation_does_not_change_results(self, traced_chaos):
        """Observe-on reports must be identical to observe-off reports."""
        observed_report, _observation = traced_chaos
        plain_report, observations = _run(None)
        assert observations == []
        assert dataclasses.asdict(plain_report) == dataclasses.asdict(observed_report)

    def test_trace_is_reproducible_at_the_same_seed(self, traced_chaos):
        _report, first = traced_chaos
        _report2, (second,) = _run(ObserveSpec.full())
        assert first.trace_jsonl == second.trace_jsonl
        assert first.metrics == second.metrics

    def test_fast_and_slow_paths_trace_identically(self):
        spec = ObserveSpec(trace=True)
        _rf, (fast,) = _run(spec, fast_path=True)
        _rs, (slow,) = _run(spec, fast_path=False)
        assert fast.trace_jsonl == slow.trace_jsonl

    def test_trace_sampling_thins_spans_deterministically(self):
        full_spec = ObserveSpec(trace=True)
        thin_spec = ObserveSpec(trace=True, trace_sample_every=8)
        _rf, (full,) = _run(full_spec)
        _rt, (thin,) = _run(thin_spec)

        def pkt_ids(observation):
            return {
                record["pkt"]
                for record in map(json.loads, observation.trace_jsonl.splitlines())
                if record.get("ev") == "generate"
            }

        full_ids, thin_ids = pkt_ids(full), pkt_ids(thin)
        assert thin_ids < full_ids
        # Sampling is decided at generation time from the packet index,
        # so exactly the 1-in-8 stream survives.
        assert all(int(pkt.split("#")[1]) % 8 == 0 for pkt in thin_ids)


class TestCampaignIntegration:
    def test_execute_run_collects_observability_summaries(self):
        record = execute_run(
            RunSpec(
                scenario="workload",
                mode="compare",
                params={"workload": "enterprise-poisson", "chain": "fw_nat"},
                options={"observe": {"metrics": True, "profile": True}},
                time_scale=0.05,
            )
        )
        summaries = record["observability"]
        assert [entry["deployment"] for entry in summaries] == [
            "baseline", "payloadpark"
        ]
        for entry in summaries:
            assert entry["metrics"]["samples_taken"] > 0
            assert entry["profile"]["total_wall_ns"] > 0
        pickle.dumps(record)  # summaries must survive worker->pool transport

    def test_execute_run_without_observe_has_no_summaries(self):
        record = execute_run(
            RunSpec(
                scenario="workload",
                mode="compare",
                params={"workload": "enterprise-poisson", "chain": "fw_nat"},
                time_scale=0.05,
            )
        )
        assert "observability" not in record
