"""Integration: incast collapse appears only under the closed-loop transport.

The same synchronized fan-in pattern is offered twice — once by the
open-loop ``incast-sync`` workload (an arrival process that shrugs at
drops) and once by the closed-loop ``incast-collapse`` workload (NewReno
senders whose millisecond RTO floor dwarfs the microsecond RTT).  Only
the closed loop may collapse: drops stall its ACC clock into timeouts
and retransmissions, so delivered goodput falls far below the open-loop
figure at the same operating point.
"""

import pytest

from repro.experiments.runner import DeploymentKind, ExperimentRunner
from repro.experiments.scenarios import workload_scenario
from repro.validation.engine import check_scenario

TIME_SCALE = 0.5


@pytest.fixture(scope="module")
def reports():
    runner = ExperimentRunner(time_scale=TIME_SCALE)
    open_loop = runner.run_deployment(
        workload_scenario("incast-sync"), DeploymentKind.PAYLOADPARK
    )
    closed_loop = runner.run_deployment(
        workload_scenario("incast-collapse"), DeploymentKind.PAYLOADPARK
    )
    return open_loop, closed_loop


class TestIncastCollapse:
    def test_collapse_only_under_closed_loop(self, reports):
        open_loop, closed_loop = reports
        # Open loop sails through the same fan-in without retransmitting
        # a single frame; the closed loop loses a fraction of every
        # synchronized window and pays RTO stalls for it.
        assert open_loop.retransmitted_packets == 0
        assert closed_loop.retransmitted_packets > 0
        assert closed_loop.delivered_goodput_gbps < open_loop.delivered_goodput_gbps / 3

    def test_loss_is_real_only_for_the_closed_loop(self, reports):
        open_loop, closed_loop = reports
        assert open_loop.drop_rate < 0.01
        assert closed_loop.drop_rate > 0.05

    def test_goodput_never_exceeds_throughput(self, reports):
        _open_loop, closed_loop = reports
        assert closed_loop.throughput_gbps >= closed_loop.delivered_goodput_gbps
        assert closed_loop.delivered_goodput_gbps > 0


class TestClosedLoopValidation:
    @pytest.mark.parametrize("workload", ["incast-collapse", "rpc-fanout"])
    def test_invariants_hold_under_closed_loop(self, workload):
        report = check_scenario(
            workload_scenario(workload), time_scale=0.1
        )
        assert report.ok, [str(v) for v in report.violations]
        assert report.runs_checked == 2
